//! Common layout constructors used throughout the paper's evaluation.
//!
//! Logical dimension order for convolution tensors is `N, C, spatial...`
//! (i.e. the paper's `NOHW` for a C2D output), so e.g. `NHWO` is the
//! physical permutation `[0, 2, 3, 1]`.

use crate::primitives::{Layout, LayoutError, LayoutPrim};
use alt_tensor::Shape;

/// Pure permutation layout.
pub fn permuted(shape: Shape, perm: &[usize]) -> Result<Layout, LayoutError> {
    Layout::identity(shape).with(LayoutPrim::Reorder {
        perm: perm.to_vec(),
    })
}

/// `NOHW` (identity for our logical order).
pub fn nohw(shape: Shape) -> Layout {
    Layout::identity(shape)
}

/// `NHWO`: channels-last for 4-d tensors.
pub fn nhwo(shape: Shape) -> Result<Layout, LayoutError> {
    permuted(shape, &[0, 2, 3, 1])
}

/// `HWON`: DSP-style layout for 4-d tensors.
pub fn hwon(shape: Shape) -> Result<Layout, LayoutError> {
    permuted(shape, &[2, 3, 1, 0])
}

/// `NDHWO`: channels-last for 5-d tensors.
pub fn ndhwo(shape: Shape) -> Result<Layout, LayoutError> {
    permuted(shape, &[0, 2, 3, 4, 1])
}

/// `NWO`: channels-last for 3-d tensors.
pub fn nwo(shape: Shape) -> Result<Layout, LayoutError> {
    permuted(shape, &[0, 2, 1])
}

/// Channels-last for any rank >= 3 (`N, spatial..., C`).
pub fn channels_last(shape: Shape) -> Result<Layout, LayoutError> {
    let nd = shape.ndim();
    let mut perm = vec![0];
    perm.extend(2..nd);
    perm.push(1);
    permuted(shape, &perm)
}

/// `N (C/ct) spatial... ct`: NeoCPU-style tiled channel layout (the
/// paper's `N O/ot H W ot`). Works for any rank with channels at dim 1.
pub fn channel_tiled(shape: Shape, ct: i64) -> Result<Layout, LayoutError> {
    let c = shape.dim(1);
    if ct <= 0 || c % ct != 0 {
        return Err(LayoutError::BadFactors {
            factors: vec![c / ct.max(1), ct],
            dim_size: c,
        });
    }
    let nd = shape.ndim();
    let l = Layout::identity(shape).with(LayoutPrim::Split {
        dim: 1,
        factors: vec![c / ct, ct],
    })?;
    // [N, C/ct, ct, S...] -> [N, C/ct, S..., ct]
    let mut perm = vec![0, 1];
    perm.extend(3..nd + 1);
    perm.push(2);
    l.with(LayoutPrim::Reorder { perm })
}

/// The paper's §5.1 C2D *output* template:
/// `N (H/ht) (W/wt) (O/ot) ht wt ot`.
pub fn c2d_output_tiled(shape: Shape, ht: i64, wt: i64, ot: i64) -> Result<Layout, LayoutError> {
    let (o, h, w) = (shape.dim(1), shape.dim(2), shape.dim(3));
    let l = Layout::identity(shape)
        .with(LayoutPrim::Split {
            dim: 1,
            factors: vec![o / ot, ot],
        })?
        // [N, O/ot, ot, H, W]
        .with(LayoutPrim::Split {
            dim: 3,
            factors: vec![h / ht, ht],
        })?
        // [N, O/ot, ot, H/ht, ht, W]
        .with(LayoutPrim::Split {
            dim: 5,
            factors: vec![w / wt, wt],
        })?;
    // [N, O/ot, ot, H/ht, ht, W/wt, wt] -> [N, H/ht, W/wt, O/ot, ht, wt, ot]
    l.with(LayoutPrim::Reorder {
        perm: vec![0, 3, 5, 1, 4, 6, 2],
    })
}

/// The paper's §5.1 C2D *input* template:
/// `N (tiles_h) (tiles_w) (I/it) Bh Bw it` with overlapped spatial tiles of
/// size `B = (ht-1)*stride + window` advancing by `S = ht*stride`, so that
/// one output tile's halo region is stored contiguously (Fig. 2).
///
/// `window` is the dilated kernel extent `(K-1)*dilation + 1`.
pub fn c2d_input_tiled(
    shape: Shape,
    it: i64,
    ht: i64,
    wt: i64,
    stride: i64,
    window_h: i64,
    window_w: i64,
) -> Result<Layout, LayoutError> {
    let i = shape.dim(1);
    let bh = (ht - 1) * stride + window_h;
    let bw = (wt - 1) * stride + window_w;
    let l = Layout::identity(shape)
        .with(LayoutPrim::Split {
            dim: 1,
            factors: vec![i / it, it],
        })?
        // [N, I/it, it, H, W]
        .with(LayoutPrim::Unfold {
            dim: 3,
            tile: bh,
            stride: ht * stride,
        })?
        // [N, I/it, it, Th, Bh, W]
        .with(LayoutPrim::Unfold {
            dim: 5,
            tile: bw,
            stride: wt * stride,
        })?;
    // [N, I/it, it, Th, Bh, Tw, Bw] -> [N, Th, Tw, I/it, Bh, Bw, it]
    l.with(LayoutPrim::Reorder {
        perm: vec![0, 3, 5, 1, 4, 6, 2],
    })
}

/// The paper's §5.1 C2D *weight* template:
/// `(O/ot') (I/it') KH KW it' ot'` for logical `[O, I, KH, KW]`.
pub fn c2d_weight_tiled(shape: Shape, it: i64, ot: i64) -> Result<Layout, LayoutError> {
    let (o, i) = (shape.dim(0), shape.dim(1));
    let l = Layout::identity(shape)
        .with(LayoutPrim::Split {
            dim: 0,
            factors: vec![o / ot, ot],
        })?
        // [O/ot, ot, I, KH, KW]
        .with(LayoutPrim::Split {
            dim: 2,
            factors: vec![i / it, it],
        })?;
    // [O/ot, ot, I/it, it, KH, KW] -> [O/ot, I/it, KH, KW, it, ot]
    l.with(LayoutPrim::Reorder {
        perm: vec![0, 2, 4, 5, 3, 1],
    })
}

/// 2-d transpose (the paper's `NK` layout for the GMM weight `B`).
pub fn transposed2d(shape: Shape) -> Result<Layout, LayoutError> {
    permuted(shape, &[1, 0])
}

/// The paper's §5.1 GMM template `(R/rt) (C/ct) rt ct` for a 2-d matrix
/// (`M/mt N/nt mt nt` for `C`, `M/mt K/kt mt kt` for `A`, `K/kt N/nt kt nt`
/// for `B` — the `NKn` family).
pub fn gmm_tiled(shape: Shape, rt: i64, ct: i64) -> Result<Layout, LayoutError> {
    let (r, c) = (shape.dim(0), shape.dim(1));
    let l = Layout::identity(shape)
        .with(LayoutPrim::Split {
            dim: 0,
            factors: vec![r / rt, rt],
        })?
        // [R/rt, rt, C]
        .with(LayoutPrim::Split {
            dim: 2,
            factors: vec![c / ct, ct],
        })?;
    // [R/rt, rt, C/ct, ct] -> [R/rt, C/ct, rt, ct]
    l.with(LayoutPrim::Reorder {
        perm: vec![0, 2, 1, 3],
    })
}

/// N-dimensional §5.1 convolution *output* template:
/// `N (S1/t1) .. (Sd/td) (O/ot) t1 .. td ot` for logical `[N, O, S1..Sd]`.
pub fn conv_output_tiled_nd(shape: Shape, tiles: &[i64], ot: i64) -> Result<Layout, LayoutError> {
    let d = shape.ndim() - 2;
    if tiles.len() != d {
        return Err(LayoutError::RankMismatch {
            what: "conv_output_tiled_nd: one tile per spatial dim",
            expected: d,
            got: tiles.len(),
        });
    }
    let o = shape.dim(1);
    let mut l = Layout::identity(shape.clone()).with(LayoutPrim::Split {
        dim: 1,
        factors: vec![o / ot, ot],
    })?;
    // [N, O/ot, ot, S1..Sd]
    for (k, &t) in tiles.iter().enumerate() {
        let dim = 3 + 2 * k;
        let s = shape.dim(2 + k);
        l = l.with(LayoutPrim::Split {
            dim,
            factors: vec![s / t, t],
        })?;
    }
    // [N, O/ot, ot, S1/t1, t1, .., Sd/td, td]
    // -> [N, S1/t1, .., Sd/td, O/ot, t1, .., td, ot]
    let mut perm = vec![0usize];
    for k in 0..d {
        perm.push(3 + 2 * k);
    }
    perm.push(1);
    for k in 0..d {
        perm.push(4 + 2 * k);
    }
    perm.push(2);
    l.with(LayoutPrim::Reorder { perm })
}

/// N-dimensional §5.1 convolution *input* template with overlapped
/// spatial tiles: `N T1..Td (I/it) B1..Bd it` for logical `[N, I, S1..Sd]`.
///
/// Tile `k` has size `B = (t_k - 1) * stride + window_k` and advances by
/// `S = t_k * stride` so each output tile's halo is contiguous (Fig. 2).
pub fn conv_input_tiled_nd(
    shape: Shape,
    it: i64,
    tiles: &[i64],
    strides: &[i64],
    windows: &[i64],
) -> Result<Layout, LayoutError> {
    let d = shape.ndim() - 2;
    if tiles.len() != d {
        return Err(LayoutError::RankMismatch {
            what: "conv_input_tiled_nd: one tile per spatial dim",
            expected: d,
            got: tiles.len(),
        });
    }
    if windows.len() != d {
        return Err(LayoutError::RankMismatch {
            what: "conv_input_tiled_nd: one window per spatial dim",
            expected: d,
            got: windows.len(),
        });
    }
    if strides.len() != d {
        return Err(LayoutError::RankMismatch {
            what: "conv_input_tiled_nd: one stride per spatial dim",
            expected: d,
            got: strides.len(),
        });
    }
    let i = shape.dim(1);
    let mut l = Layout::identity(shape).with(LayoutPrim::Split {
        dim: 1,
        factors: vec![i / it, it],
    })?;
    // [N, I/it, it, S1..Sd]
    for (k, (&t, &m)) in tiles.iter().zip(windows).enumerate() {
        let dim = 3 + 2 * k;
        let stride = strides[k];
        let b = (t - 1) * stride + m;
        l = l.with(LayoutPrim::Unfold {
            dim,
            tile: b,
            stride: t * stride,
        })?;
    }
    // [N, I/it, it, T1, B1, .., Td, Bd]
    // -> [N, T1, .., Td, I/it, B1, .., Bd, it]
    let mut perm = vec![0usize];
    for k in 0..d {
        perm.push(3 + 2 * k);
    }
    perm.push(1);
    for k in 0..d {
        perm.push(4 + 2 * k);
    }
    perm.push(2);
    l.with(LayoutPrim::Reorder { perm })
}

/// N-dimensional §5.1 convolution *weight* template:
/// `(O/ot) (I/it) K1..Kd it ot` for logical `[O, I, K1..Kd]`.
pub fn conv_weight_tiled_nd(shape: Shape, it: i64, ot: i64) -> Result<Layout, LayoutError> {
    let d = shape.ndim() - 2;
    let (o, i) = (shape.dim(0), shape.dim(1));
    let l = Layout::identity(shape)
        .with(LayoutPrim::Split {
            dim: 0,
            factors: vec![o / ot, ot],
        })?
        // [O/ot, ot, I, K..]
        .with(LayoutPrim::Split {
            dim: 2,
            factors: vec![i / it, it],
        })?;
    // [O/ot, ot, I/it, it, K1..Kd] -> [O/ot, I/it, K1..Kd, it, ot]
    let mut perm = vec![0usize, 2];
    for k in 0..d {
        perm.push(4 + k);
    }
    perm.push(3);
    perm.push(1);
    l.with(LayoutPrim::Reorder { perm })
}

/// Weight template for *transposed* convolutions (logical `[I, O, K..]`):
/// `(I/it) (O/ot) K1..Kd it ot`.
pub fn tconv_weight_tiled_nd(shape: Shape, it: i64, ot: i64) -> Result<Layout, LayoutError> {
    let d = shape.ndim() - 2;
    let (i, o) = (shape.dim(0), shape.dim(1));
    let l = Layout::identity(shape)
        .with(LayoutPrim::Split {
            dim: 0,
            factors: vec![i / it, it],
        })?
        .with(LayoutPrim::Split {
            dim: 2,
            factors: vec![o / ot, ot],
        })?;
    // [I/it, it, O/ot, ot, K1..Kd] -> [I/it, O/ot, K1..Kd, it, ot]
    let mut perm = vec![0usize, 2];
    for k in 0..d {
        perm.push(4 + k);
    }
    perm.push(1);
    perm.push(3);
    l.with(LayoutPrim::Reorder { perm })
}

/// Batched version of [`gmm_tiled`]: `B (R/rt) (C/ct) rt ct` for logical
/// `[B, R, C]`.
pub fn batch_gmm_tiled(shape: Shape, rt: i64, ct: i64) -> Result<Layout, LayoutError> {
    let (r, c) = (shape.dim(1), shape.dim(2));
    let l = Layout::identity(shape)
        .with(LayoutPrim::Split {
            dim: 1,
            factors: vec![r / rt, rt],
        })?
        // [B, R/rt, rt, C]
        .with(LayoutPrim::Split {
            dim: 3,
            factors: vec![c / ct, ct],
        })?;
    // [B, R/rt, rt, C/ct, ct] -> [B, R/rt, C/ct, rt, ct]
    l.with(LayoutPrim::Reorder {
        perm: vec![0, 1, 3, 2, 4],
    })
}

/// Two-level n-dimensional convolution *output* template (Fig. 13):
/// `N  S1/(m1 i1) .. Sd/(md id)  O/(om oi)  m1..md om  i1..id oi`.
///
/// `tiles_mid` and `tiles_in` are the second- and first-level tile sizes
/// per spatial dim (`m_k`, `i_k`); `ot_mid`/`ot_in` tile the channels.
pub fn conv_output_tiled2_nd(
    shape: Shape,
    tiles_mid: &[i64],
    tiles_in: &[i64],
    ot_mid: i64,
    ot_in: i64,
) -> Result<Layout, LayoutError> {
    let d = shape.ndim() - 2;
    if tiles_mid.len() != d {
        return Err(LayoutError::RankMismatch {
            what: "conv_output_tiled2_nd: one mid tile per spatial dim",
            expected: d,
            got: tiles_mid.len(),
        });
    }
    if tiles_in.len() != d {
        return Err(LayoutError::RankMismatch {
            what: "conv_output_tiled2_nd: one inner tile per spatial dim",
            expected: d,
            got: tiles_in.len(),
        });
    }
    let o = shape.dim(1);
    let mut l = Layout::identity(shape.clone()).with(LayoutPrim::Split {
        dim: 1,
        factors: vec![o / (ot_mid * ot_in), ot_mid, ot_in],
    })?;
    // [N, O/(om oi), om, oi, S1..Sd]
    for k in 0..d {
        let dim = 4 + 3 * k;
        let s = shape.dim(2 + k);
        let (m, i) = (tiles_mid[k], tiles_in[k]);
        l = l.with(LayoutPrim::Split {
            dim,
            factors: vec![s / (m * i), m, i],
        })?;
    }
    // [N, O0, O1, O2, S1_0, S1_1, S1_2, ..] ->
    // [N, S*_0.., O0, S*_1.., O1, S*_2.., O2]
    let mut perm = vec![0usize];
    for k in 0..d {
        perm.push(4 + 3 * k);
    }
    perm.push(1);
    for k in 0..d {
        perm.push(5 + 3 * k);
    }
    perm.push(2);
    for k in 0..d {
        perm.push(6 + 3 * k);
    }
    perm.push(3);
    l.with(LayoutPrim::Reorder { perm })
}

/// Bank-conflict-avoiding variant of [`channel_tiled`]: the inner
/// channel-tile coordinate is XOR-swizzled against the innermost spatial
/// coordinate, so consecutive spatial positions hit rotated channel
/// banks (`2^bits` must divide `ct`).
pub fn channel_tiled_swizzled(shape: Shape, ct: i64, bits: u32) -> Result<Layout, LayoutError> {
    let l = channel_tiled(shape, ct)?;
    let nd = l.physical_shape().ndim();
    l.with(LayoutPrim::Swizzle {
        dim: nd - 1,
        src: nd - 2,
        bits,
    })
}

/// Morton (Z-order) interleaving of the last two dimensions — locality-
/// preserving for stencil access over square power-of-two extents.
pub fn morton_spatial(shape: Shape) -> Result<Layout, LayoutError> {
    let nd = shape.ndim();
    if nd < 2 {
        return Err(LayoutError::BadDim { dim: 1, ndim: nd });
    }
    Layout::identity(shape).with(LayoutPrim::Morton { dim: nd - 2 })
}

/// Block-diagonal rotation of the innermost dimension keyed by the one
/// before it: row `r` stores its elements rotated by `r·block`, skewing
/// column-major walks across memory banks.
pub fn block_diag_rotated(shape: Shape, block: i64) -> Result<Layout, LayoutError> {
    let nd = shape.ndim();
    if nd < 2 {
        return Err(LayoutError::BadDim { dim: 1, ndim: nd });
    }
    Layout::identity(shape).with(LayoutPrim::BlockDiag {
        dim: nd - 1,
        src: nd - 2,
        block,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use alt_tensor::NdBuf;

    #[test]
    fn nhwo_roundtrip() {
        let s = Shape::new([2, 3, 4, 5]);
        let l = nhwo(s.clone()).unwrap();
        assert_eq!(l.physical_shape().dims(), &[2, 4, 5, 3]);
        let buf = NdBuf::from_fn(s, |i| i as f32);
        assert_eq!(l.unpack(&l.pack(&buf).unwrap()).unwrap().data(), buf.data());
    }

    #[test]
    fn channel_tiled_matches_neocpu_shape() {
        let l = channel_tiled(Shape::new([1, 64, 7, 7]), 16).unwrap();
        assert_eq!(l.physical_shape().dims(), &[1, 4, 7, 7, 16]);
    }

    #[test]
    fn channel_tiled_rejects_nondivisor() {
        assert!(channel_tiled(Shape::new([1, 64, 7, 7]), 7).is_err());
    }

    #[test]
    fn c2d_output_template_shape() {
        let l = c2d_output_tiled(Shape::new([1, 64, 16, 16]), 4, 16, 16).unwrap();
        assert_eq!(l.physical_shape().dims(), &[1, 4, 1, 4, 4, 16, 16]);
        let buf = NdBuf::from_fn(Shape::new([1, 64, 16, 16]), |i| (i % 97) as f32);
        assert_eq!(l.unpack(&l.pack(&buf).unwrap()).unwrap().data(), buf.data());
    }

    #[test]
    fn c2d_input_template_matches_fig2() {
        // Fig. 2: stride 1, spatial halving, window KH: each input tile is
        // H/2 + (KH - 1) with stride H/2.
        let (h, kh) = (16, 3);
        let ht = h / 2; // two output tiles; input H here is H + KH - 1
        let in_h = h + kh - 1;
        let l = c2d_input_tiled(
            Shape::new([1, 8, in_h as i64, in_h as i64]),
            8,
            ht as i64,
            ht as i64,
            1,
            kh as i64,
            kh as i64,
        )
        .unwrap();
        let dims = l.physical_shape();
        // [N, Th, Tw, I/it, Bh, Bw, it]
        assert_eq!(dims.dims()[1], 2);
        assert_eq!(dims.dims()[4], (ht + kh - 1) as i64);
        let buf = NdBuf::from_fn(Shape::new([1, 8, in_h as i64, in_h as i64]), |i| i as f32);
        assert_eq!(l.unpack(&l.pack(&buf).unwrap()).unwrap().data(), buf.data());
    }

    #[test]
    fn gmm_template_shape() {
        let l = gmm_tiled(Shape::new([64, 128]), 16, 16).unwrap();
        assert_eq!(l.physical_shape().dims(), &[4, 8, 16, 16]);
    }

    #[test]
    fn weight_template_shape() {
        let l = c2d_weight_tiled(Shape::new([64, 32, 3, 3]), 8, 16).unwrap();
        assert_eq!(l.physical_shape().dims(), &[4, 4, 3, 3, 8, 16]);
    }

    #[test]
    fn nd_templates_match_2d_shapes() {
        let out2d = c2d_output_tiled(Shape::new([1, 64, 16, 16]), 4, 16, 16).unwrap();
        let outnd = conv_output_tiled_nd(Shape::new([1, 64, 16, 16]), &[4, 16], 16).unwrap();
        assert_eq!(out2d.physical_shape(), outnd.physical_shape());
        let in2d = c2d_input_tiled(Shape::new([1, 8, 18, 18]), 8, 8, 8, 1, 3, 3).unwrap();
        let innd =
            conv_input_tiled_nd(Shape::new([1, 8, 18, 18]), 8, &[8, 8], &[1, 1], &[3, 3]).unwrap();
        assert_eq!(in2d.physical_shape(), innd.physical_shape());
        let w2d = c2d_weight_tiled(Shape::new([64, 32, 3, 3]), 8, 16).unwrap();
        let wnd = conv_weight_tiled_nd(Shape::new([64, 32, 3, 3]), 8, 16).unwrap();
        assert_eq!(w2d.physical_shape(), wnd.physical_shape());
    }

    #[test]
    fn conv1d_3d_templates_roundtrip() {
        let l = conv_output_tiled_nd(Shape::new([1, 8, 12]), &[4], 4).unwrap();
        let buf = NdBuf::from_fn(Shape::new([1, 8, 12]), |i| i as f32);
        assert_eq!(l.unpack(&l.pack(&buf).unwrap()).unwrap().data(), buf.data());
        let l3 = conv_output_tiled_nd(Shape::new([1, 8, 4, 6, 6]), &[2, 3, 3], 4).unwrap();
        let b3 = NdBuf::from_fn(Shape::new([1, 8, 4, 6, 6]), |i| (i % 31) as f32);
        assert_eq!(l3.unpack(&l3.pack(&b3).unwrap()).unwrap().data(), b3.data());
    }

    #[test]
    fn batch_gmm_template_shape() {
        let l = batch_gmm_tiled(Shape::new([4, 32, 64]), 8, 16).unwrap();
        assert_eq!(l.physical_shape().dims(), &[4, 4, 4, 8, 16]);
    }

    #[test]
    fn tconv_weight_template_shape() {
        let l = tconv_weight_tiled_nd(Shape::new([32, 64, 3, 3]), 8, 16).unwrap();
        assert_eq!(l.physical_shape().dims(), &[4, 4, 3, 3, 8, 16]);
    }

    #[test]
    fn two_level_output_template_roundtrip() {
        let l = conv_output_tiled2_nd(Shape::new([1, 32, 16, 16]), &[2, 2], &[4, 4], 2, 8).unwrap();
        assert_eq!(l.physical_shape().numel(), 32 * 16 * 16);
        let buf = NdBuf::from_fn(Shape::new([1, 32, 16, 16]), |i| (i % 251) as f32);
        assert_eq!(l.unpack(&l.pack(&buf).unwrap()).unwrap().data(), buf.data());
    }
}
