//! Property-based tests: every randomly generated primitive sequence must
//! preserve the fundamental layout invariants.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use alt_layout::{Layout, LayoutPrim};
use alt_tensor::{NdBuf, Shape};

/// Generates a random small logical shape (2-4 dims, sizes 1-12).
fn arb_shape() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1i64..=12, 2..=4).prop_map(Shape::new)
}

/// Generates a random factorization of `n` into >= 2 factors.
fn factorize(n: i64, rng_val: u64) -> Vec<i64> {
    let mut factors = Vec::new();
    let mut rest = n;
    let mut x = rng_val;
    while rest > 1 && factors.len() < 2 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let divs: Vec<i64> = (1..=rest).filter(|d| rest % d == 0).collect();
        let f = divs[(x >> 33) as usize % divs.len()];
        factors.push(f);
        rest /= f;
    }
    factors.push(rest);
    factors
}

/// Applies up to `n_prims` random valid primitives to a layout.
fn random_layout(shape: Shape, seed: u64, n_prims: usize) -> Layout {
    let mut layout = Layout::identity(shape);
    let mut x = seed;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    for _ in 0..n_prims {
        let dims = layout.physical_shape();
        let nd = dims.ndim();
        match next() % 5 {
            0 => {
                // Split a dimension with size > 1.
                let candidates: Vec<usize> = (0..nd).filter(|&k| dims.dim(k) > 1).collect();
                if let Some(&k) = candidates.get(next() % candidates.len().max(1)) {
                    let factors = factorize(dims.dim(k), next() as u64);
                    if factors.len() >= 2 {
                        let _ = layout.apply(LayoutPrim::Split { dim: k, factors });
                    }
                }
            }
            1 => {
                // Random permutation.
                let mut perm: Vec<usize> = (0..nd).collect();
                for i in (1..nd).rev() {
                    perm.swap(i, next() % (i + 1));
                }
                let _ = layout.apply(LayoutPrim::Reorder { perm });
            }
            2 => {
                if nd >= 2 {
                    let start = next() % (nd - 1);
                    let count = 2 + next() % (nd - start - 1).max(1);
                    let count = count.min(nd - start);
                    let _ = layout.apply(LayoutPrim::Fuse { start, count });
                }
            }
            3 => {
                let k = next() % nd;
                let d = dims.dim(k);
                if d >= 2 {
                    let tile = 2 + (next() as i64) % (d - 1);
                    let stride = 1 + (next() as i64) % tile;
                    let _ = layout.apply(LayoutPrim::Unfold {
                        dim: k,
                        tile,
                        stride,
                    });
                }
            }
            _ => {
                let k = next() % nd;
                let _ = layout.apply(LayoutPrim::Pad {
                    dim: k,
                    before: (next() % 3) as i64,
                    after: (next() % 3) as i64,
                });
            }
        }
    }
    layout
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pack followed by unpack restores the logical buffer exactly, for
    /// any primitive sequence (including overlapping unfolds and pads).
    #[test]
    fn pack_unpack_roundtrip(shape in arb_shape(), seed in any::<u64>(), n in 0usize..4) {
        let layout = random_layout(shape.clone(), seed, n);
        let logical = NdBuf::from_fn(shape, |i| (i % 251) as f32 + 1.0);
        let packed = layout.pack(&logical).unwrap();
        let unpacked = layout.unpack(&packed).unwrap();
        prop_assert_eq!(unpacked.data(), logical.data());
    }

    /// The canonical physical slot of every logical index is in bounds and
    /// inverts back to the same logical index.
    #[test]
    fn logical_physical_inverse(shape in arb_shape(), seed in any::<u64>(), n in 0usize..4) {
        let layout = random_layout(shape.clone(), seed, n);
        let phys = layout.physical_shape();
        for idx in shape.iter_indices().step_by(7) {
            let p = layout.logical_to_physical(&idx).unwrap();
            for (pi, pd) in p.iter().zip(phys.dims()) {
                prop_assert!(*pi >= 0 && pi < pd, "physical index out of bounds");
            }
            let back = layout.physical_to_logical(&p).unwrap();
            prop_assert_eq!(back, Some(idx));
        }
    }

    /// Physical capacity is always >= logical element count (data can be
    /// duplicated or padded, never lost).
    #[test]
    fn physical_capacity_bounds(shape in arb_shape(), seed in any::<u64>(), n in 0usize..4) {
        let layout = random_layout(shape.clone(), seed, n);
        prop_assert!(layout.physical_shape().numel() >= shape.numel());
    }

    /// Every physical slot either maps to a valid logical element or is
    /// reported as a hole (None); the union of mapped slots covers all
    /// logical elements.
    #[test]
    fn physical_slots_cover_logical(shape in arb_shape(), seed in any::<u64>(), n in 0usize..3) {
        let layout = random_layout(shape.clone(), seed, n);
        let phys = layout.physical_shape();
        prop_assume!(phys.numel() <= 4096);
        let mut covered = vec![false; shape.numel() as usize];
        for pidx in phys.iter_indices() {
            if let Some(lidx) = layout.physical_to_logical(&pidx).unwrap() {
                covered[shape.flatten(&lidx) as usize] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "some logical element has no slot");
    }
}
