//! `altc` — command-line driver for the ALT compiler.
//!
//! Compiles a model from the built-in zoo (or a named single operator)
//! for one of the machine profiles and reports the tuning outcome.
//!
//! ```text
//! altc --model r18 --platform intel --budget 400
//! altc --model r18 --budget 400 --jobs 8
//! altc --model mv2 --platform gpu --budget 200 --json
//! altc --model r18 --dot > r18.dot
//! altc --model r18 --budget 64 --trace r18.trace.jsonl
//! altc --model r18 --budget 64 --faults 0.2 --trace r18.trace.jsonl
//! altc --model r18 --budget 64 --journal r18.journal.jsonl
//! altc inspect r18.journal.jsonl
//! altc inspect r18.journal.jsonl --json
//! altc inspect r18.journal.jsonl --html r18.report.html
//! altc --model r18 --checkpoint ck.json --checkpoint-every 50
//! altc --model r18 --resume ck.json
//! altc report r18.trace.jsonl
//! altc profile --model r18 --budget 64 --perfetto r18.perfetto.json
//! altc run --model bt --native --check
//! altc run --model r18 --budget 64 --native --json
//! altc run --model r18 --native --check --check-cap 200000
//! altc verify --model r18 --json
//! altc verify --model mv2 --budget 32
//! altc verify --presets
//! altc --model r18 --budget 64 --store tune.altstore
//! altc store stats tune.altstore
//! altc store verify tune.altstore --json
//! altc store gc tune.altstore
//! altc store export tune.altstore
//! ```

use alt_core::{CompileOptions, Compiler, JsonlSink};
use alt_models::{bert_base, bert_tiny, mobilenet_v2, resnet18, resnet3d_18};
use alt_sim::{arm_cpu, intel_cpu, nvidia_gpu, MachineProfile};
use alt_tensor::Graph;

struct Args {
    model: String,
    platform: String,
    budget: u64,
    batch: i64,
    seed: u64,
    json: bool,
    dot: bool,
    trace: Option<String>,
    journal: Option<String>,
    faults: f64,
    checkpoint: Option<String>,
    checkpoint_every: u64,
    resume: Option<String>,
    jobs: usize,
    no_verify: bool,
    advanced_layouts: bool,
    store: Option<String>,
    timing: Option<String>,
    manifest: Option<String>,
    progress: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: "r18".into(),
        platform: "intel".into(),
        budget: 300,
        batch: 1,
        seed: 0,
        json: false,
        dot: false,
        trace: None,
        journal: None,
        faults: 0.0,
        checkpoint: None,
        checkpoint_every: 0,
        resume: None,
        jobs: 1,
        no_verify: false,
        advanced_layouts: false,
        store: None,
        timing: None,
        manifest: None,
        progress: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--model" | "-m" => args.model = value("--model")?,
            "--platform" | "-p" => args.platform = value("--platform")?,
            "--budget" | "-b" => {
                args.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--json" => args.json = true,
            "--dot" => args.dot = true,
            "--trace" => args.trace = Some(value("--trace")?),
            "--journal" => args.journal = Some(value("--journal")?),
            "--faults" => {
                args.faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?;
                if !(0.0..1.0).contains(&args.faults) {
                    return Err("--faults must be in [0, 1)".into());
                }
            }
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--resume" => args.resume = Some(value("--resume")?),
            "--jobs" | "-j" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--no-verify" => args.no_verify = true,
            "--advanced-layouts" => args.advanced_layouts = true,
            "--store" => args.store = Some(value("--store")?),
            "--timing" => args.timing = Some(value("--timing")?),
            "--manifest" => args.manifest = Some(value("--manifest")?),
            "--progress" => args.progress = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    // `--store` beats the environment; an empty ALT_STORE means "off".
    if args.store.is_none() {
        args.store = std::env::var("ALT_STORE").ok().filter(|s| !s.is_empty());
    }
    Ok(args)
}

fn print_help() {
    println!(
        "altc — ALT deep-learning compiler (EuroSys '23 reproduction)

USAGE:
    altc [OPTIONS]
    altc report <TRACE.jsonl>
    altc profile [OPTIONS]

OPTIONS:
    -m, --model <NAME>       r18 | mv2 | bert-base | bert-tiny | r3d  [default: r18]
    -p, --platform <NAME>    intel | gpu | arm                        [default: intel]
    -b, --budget <N>         total tuning measurements                [default: 300]
        --batch <N>          batch size                               [default: 1]
        --seed <N>           tuning seed                              [default: 0]
        --json               machine-readable output
        --dot                print the model graph in DOT format and exit
        --trace <PATH>       write a JSONL tuning trace (inspect with `altc report`)
        --journal <PATH>     write a JSONL search journal: one record per
                             generated candidate with its terminal outcome
                             (measured / cache_hit / verify_rejected / failed /
                             skipped), plus layout visits and commits; a
                             resumed run appends to its predecessor's journal
                             (inspect with `altc inspect`)
        --faults <RATE>      inject faults (compile failures, timeouts, noisy
                             latencies) into that fraction of measurements; the
                             tuner retries, quarantines repeat offenders, and
                             still completes within its exact budget [default: 0]
        --checkpoint <PATH>  periodically write resumable tuner state here
        --checkpoint-every <N>  checkpoint every N consumed budget units [default: 50
                             when --checkpoint is set]
        --resume <PATH>      resume tuning from a checkpoint written by a run
                             with the same model, platform, seed, and budget
    -j, --jobs <N>           worker threads for candidate measurement; any N
                             produces bit-identical results, traces, and
                             accounting (workers only prewarm the memoized
                             simulation cache)                        [default: 1]
        --no-verify          skip the static pre-simulation verifier (layout
                             legality, IR well-formedness, race detection)
                             when filtering tuning candidates
        --advanced-layouts   add the `xform` knob to every layout template:
                             XOR swizzle, block-diagonal remap, and Morton
                             interleave become searchable alongside the
                             tiling factors (every winner still passes the
                             static verifier)
        --store <PATH>       durable tuning store: measurements are served
                             from (and published to) this crash-safe segment
                             file, and a finished run stores its winner so an
                             identical later run warm-starts without spending
                             any budget; also read from the ALT_STORE
                             environment variable (flag wins)
        --timing <PATH>      write the wall-clock self-profile (phase tree +
                             store/simulation latency histograms) as JSONL;
                             observation-only — winners, traces and journals
                             are bit-identical with or without it
        --manifest <PATH>    write the machine-readable per-run timing
                             manifest (phase totals, wall histograms, env,
                             config fingerprint) as JSON; implies timing
        --progress           print a throttled live heartbeat to stderr:
                             budget fraction, candidates/s, cache and store
                             hit rates, ETA
    -h, --help               this message

SUBCOMMANDS:
    report <TRACE.jsonl>     summarize a tuning trace: best-latency curve
                             per op, budget per stage, cost-model accuracy
                             per round, and cache/prefetch counters
    inspect <JOURNAL.jsonl>  tuning-run introspection from a search journal:
                             budget accounting, convergence (plateau, budget
                             to within 5% of final), cost-model calibration
                             (rolling Spearman, calibration table, worst
                             mispredictions) and joint-space coverage;
                             --json for machine-readable output, --html OUT
                             for a self-contained HTML report
    profile [OPTIONS]        tune a model, then print the winning schedule's
                             per-loop cost breakdown and roofline summary;
                             `altc profile --help` lists its options
                             (--no-tune, --json, --perfetto OUT.json)
    verify [OPTIONS]         statically verify a compiled model (or the
                             layout preset library with --presets) and
                             report every diagnostic; exits non-zero if
                             any is found; `altc verify --help` for options
    store <CMD> <PATH>       inspect and maintain a durable tuning store:
                             `stats` (record/byte counts and recovery
                             summary), `verify` (deep frame-by-frame check,
                             exits 1 on corruption), `gc` (compact and drop
                             the quarantine file), `export` (JSONL record
                             dump); all accept --json"
    );
}

/// `altc run`: compile a model and execute it on real data — through the
/// native kernel executor (`--native`), the reference interpreter, or
/// both with a bit-exact differential check (`--check`). With `--native`
/// also prints the per-op calibration table (native wall clock vs the
/// analytic model's prediction).
#[allow(clippy::too_many_lines)]
fn run_run(rest: &[String]) -> i32 {
    let mut model = "r18".to_string();
    let mut platform = "intel".to_string();
    let mut budget = 0u64;
    let mut batch = 1i64;
    let mut seed = 0u64;
    let mut native = false;
    let mut check = false;
    let mut check_cap: Option<u64> = None;
    let mut threads = 0usize;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let res: Result<(), String> = (|| {
            match a.as_str() {
                "--model" | "-m" => model = value("--model")?,
                "--platform" | "-p" => platform = value("--platform")?,
                "--budget" | "-b" => {
                    budget = value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?
                }
                "--batch" => {
                    batch = value("--batch")?
                        .parse()
                        .map_err(|e| format!("--batch: {e}"))?
                }
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--native" => native = true,
                "--check" => check = true,
                "--check-cap" => {
                    check_cap = Some(
                        value("--check-cap")?
                            .parse()
                            .map_err(|e| format!("--check-cap: {e}"))?,
                    )
                }
                "--threads" => {
                    threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--json" => json = true,
                "--help" | "-h" => {
                    println!(
                        "usage: altc run [--model NAME] [--platform NAME] [--budget N]\n\
                         \x20               [--batch N] [--seed N] [--native] [--check]\n\
                         \x20               [--check-cap ITERS] [--threads N] [--json]\n\
                         \n\
                         Compiles the model (tuning when --budget > 0, unoptimized\n\
                         otherwise) and executes it on random bindings. --native runs\n\
                         the compiled register-based kernel (stride-resolved loops,\n\
                         SIMD-width chunking, scoped-thread @par) and prints per-op\n\
                         calibration against the analytic cost model; the default runs\n\
                         the reference interpreter. --check runs both and fails unless\n\
                         outputs are bit-identical; --check-cap truncates the program\n\
                         to a statement-iteration budget first so large models stay\n\
                         affordable for the interpreter side."
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = res {
            eprintln!("error: {e}");
            return 2;
        }
    }

    let graph = match build_model(&model, batch) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let machine = match build_platform(&platform) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    let joint = (budget as f64 * 0.4) as u64;
    let compiler = Compiler::new(machine).with_options(CompileOptions {
        joint_budget: joint,
        loop_budget: budget - joint,
        seed,
        ..CompileOptions::default()
    });
    let compiled = if budget == 0 {
        compiler.compile_unoptimized(&graph)
    } else {
        eprintln!(
            "tuning {model} (batch {batch}) for {} with budget {budget}...",
            machine.name
        );
        compiler.compile(&graph)
    };

    let program = match check_cap {
        Some(cap) => compiled.program().truncated(cap),
        None => compiled.program().clone(),
    };
    let bindings = alt_tensor::exec::random_bindings(&graph, seed);
    let threads = if threads == 0 {
        alt_codegen::default_threads()
    } else {
        threads
    };

    let mut interp_us: Option<f64> = None;
    let interp_out = if check || !native {
        let t = std::time::Instant::now();
        let r = alt_loopir::run_program(&program, &graph, compiled.plan(), &bindings);
        interp_us = Some(t.elapsed().as_secs_f64() * 1e6);
        Some(r)
    } else {
        None
    };

    let native_res = if native || check {
        let kernel = alt_codegen::compile(&program, compiled.target_profile());
        let (r, stats) = kernel.run(&program, &graph, compiled.plan(), &bindings, threads);
        let breakdown = alt_sim::Simulator::new(machine).profile_program(&program);
        let table = alt_sim::calibrate(&breakdown, &stats.group_us);
        Some((r, stats, table))
    } else {
        None
    };

    let mut check_passed = None;
    if check {
        let (want, got) = match (&interp_out, &native_res) {
            (Some(w), Some((g, _, _))) => (w, g),
            _ => unreachable!("--check runs both executors"),
        };
        let mut mismatches = 0usize;
        for (t, w) in want {
            let n = &got[t];
            for (a, b) in w.data().iter().zip(n.data()) {
                if a.to_bits() != b.to_bits() {
                    mismatches += 1;
                    break;
                }
            }
        }
        check_passed = Some(mismatches == 0);
        if mismatches > 0 {
            eprintln!("check FAILED: {mismatches} tensor(s) differ between interpreter and native");
        }
    }

    if json {
        let j = serde_json::json!({
            "model": model,
            "platform": machine.name,
            "batch": batch,
            "budget": budget,
            "seed": seed,
            "threads": threads,
            "stmt_iterations": program.total_stmt_iterations(),
            "estimated_latency_s": compiled.estimated_latency(),
        });
        let mut j = j;
        let serde_json::Value::Object(obj) = &mut j else {
            unreachable!("run report is a JSON object");
        };
        if let Some(us) = interp_us {
            obj.insert("interp_us".into(), serde_json::json!(us));
        }
        if let Some((_, stats, table)) = &native_res {
            obj.insert("native_us".into(), serde_json::json!(stats.total_us));
            obj.insert("native_calibration".into(), table.to_json());
            if let Some(us) = interp_us {
                obj.insert(
                    "native_vs_interp_x".into(),
                    serde_json::json!(us / stats.total_us.max(1e-9)),
                );
            }
        }
        if let Some(ok) = check_passed {
            obj.insert(
                "check".into(),
                serde_json::json!(if ok { "pass" } else { "fail" }),
            );
        }
        let rendered = serde_json::to_string_pretty(&j).expect("run report serializes");
        println!("{rendered}");
    } else {
        println!(
            "{model} (batch {batch}) on {}: {} groups, {} stmt iterations",
            machine.name,
            program.groups.len(),
            program.total_stmt_iterations()
        );
        if let Some(us) = interp_us {
            println!("interp: {us:.1} us");
        }
        if let Some((_, stats, table)) = &native_res {
            println!(
                "native: {:.1} us ({} threads)",
                stats.total_us, stats.threads
            );
            if let Some(us) = interp_us {
                println!(
                    "native speedup vs interp: {:.1}x",
                    us / stats.total_us.max(1e-9)
                );
            }
            println!(
                "calibration vs {}: predicted {:.1} us, measured {:.1} us, ratio {:.2}",
                table.machine, table.predicted_total_us, table.measured_total_us, table.ratio
            );
        }
        if let Some(ok) = check_passed {
            println!(
                "check: {}",
                if ok { "PASS (bit-identical)" } else { "FAIL" }
            );
        }
    }
    i32::from(check_passed == Some(false))
}

/// `altc profile`: tune (or just lower) a model, then print the per-loop
/// cost attribution and roofline summary, optionally exporting a
/// Chrome-trace (Perfetto) JSON of the tuning run and simulated execution.
fn run_profile(rest: &[String]) -> i32 {
    let mut model = "r18".to_string();
    let mut platform = "intel".to_string();
    let mut budget = 64u64;
    let mut batch = 1i64;
    let mut seed = 0u64;
    let mut no_tune = false;
    let mut json = false;
    let mut perfetto: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let res: Result<(), String> = (|| {
            match a.as_str() {
                "--model" | "-m" => model = value("--model")?,
                "--platform" | "-p" => platform = value("--platform")?,
                "--budget" | "-b" => {
                    budget = value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?
                }
                "--batch" => {
                    batch = value("--batch")?
                        .parse()
                        .map_err(|e| format!("--batch: {e}"))?
                }
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--no-tune" => no_tune = true,
                "--json" => json = true,
                "--perfetto" => perfetto = Some(value("--perfetto")?),
                "--help" | "-h" => {
                    println!(
                        "usage: altc profile [--model NAME] [--platform NAME] [--budget N]\n\
                         \x20                   [--batch N] [--seed N] [--no-tune] [--json]\n\
                         \x20                   [--perfetto OUT.json]\n\
                         \n\
                         Prints the winning schedule's per-loop cost breakdown (flame-style\n\
                         tree) and roofline summary. --no-tune profiles the unoptimized\n\
                         baseline instead of tuning first. --perfetto also writes a\n\
                         Chrome-trace JSON loadable in ui.perfetto.dev."
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = res {
            eprintln!("error: {e}");
            return 2;
        }
    }

    let graph = match build_model(&model, batch) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let machine = match build_platform(&platform) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    // Capture the tuning-run records in memory so the Perfetto export can
    // interleave the tuning timeline with the simulated execution.
    let sink = std::sync::Arc::new(alt_core::MemorySink::new());
    let joint = (budget as f64 * 0.4) as u64;
    let compiler = Compiler::new(machine)
        .with_options(CompileOptions {
            joint_budget: joint,
            loop_budget: budget - joint,
            seed,
            ..CompileOptions::default()
        })
        .with_telemetry(sink.clone());
    let compiled = if no_tune {
        compiler.compile_unoptimized(&graph)
    } else {
        eprintln!(
            "tuning {model} (batch {batch}) for {} with budget {budget}...",
            machine.name
        );
        compiler.compile(&graph)
    };

    let breakdown = compiled.profile_breakdown(machine);
    let profile = alt_profiler::Profile::new(breakdown, &machine);

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&alt_profiler::summary_json(&profile)).unwrap()
        );
    } else {
        print!("{}", alt_profiler::render_text(&profile));
    }

    if let Some(path) = &perfetto {
        let mut records = sink.records();
        records.extend(alt_profiler::to_records(&profile));
        match alt_telemetry::write_chrome_trace(path, &records) {
            Ok(()) => eprintln!("chrome trace written to {path}; open in ui.perfetto.dev"),
            Err(e) => {
                eprintln!("error: --perfetto {path}: {e}");
                return 2;
            }
        }
    }
    0
}

/// `altc inspect <journal.jsonl>`: full tuning-run introspection from a
/// search journal — budget accounting, convergence, cost-model
/// calibration and joint-space coverage.
fn run_inspect(rest: &[String]) -> i32 {
    const USAGE: &str = "usage: altc inspect <JOURNAL.jsonl> [--json] [--html OUT.html]";
    let mut path: Option<String> = None;
    let mut json = false;
    let mut html: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--html" => match it.next() {
                Some(out) => html = Some(out.clone()),
                None => {
                    eprintln!("error: --html requires a value");
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!(
                    "{USAGE}\n\n\
                     Reads a search journal written by `altc --journal PATH` and prints\n\
                     convergence diagnostics (best-so-far curve, plateau detection,\n\
                     budget-to-within-5%-of-final), cost-model calibration (rolling\n\
                     Spearman rank correlation, predicted-vs-measured calibration\n\
                     table, worst mispredictions) and joint-space coverage (per-op,\n\
                     per-provenance, per-axis exploration). --json emits the full\n\
                     diagnostics object; --html writes a self-contained single-file\n\
                     HTML report (inline CSS/JS, no network access needed)."
                );
                std::process::exit(0);
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return 2;
    };
    let records = match alt_journal::read_journal(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let insp = alt_journal::inspect(&records);
    if let Some(out) = &html {
        if let Err(e) = std::fs::write(out, alt_journal::render_html(&insp)) {
            eprintln!("error: --html {out}: {e}");
            return 2;
        }
        eprintln!("html report written to {out}");
    }
    if json {
        println!("{}", serde_json::to_string_pretty(&insp).unwrap());
    } else if html.is_none() {
        print!("{}", alt_journal::render_text(&insp));
    }
    0
}

/// `altc report <trace.jsonl>`: render a recorded tuning trace.
fn run_report(rest: &[String]) -> i32 {
    let path = match rest {
        [p] if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("usage: altc report <TRACE.jsonl>");
            return 2;
        }
    };
    match alt_telemetry::read_jsonl(path) {
        Ok(records) => {
            print!("{}", alt_telemetry::render_report(&records));
            0
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            2
        }
    }
}

/// Checks every constructor in the layout preset library over
/// representative tensor shapes: construction must succeed and the
/// resulting primitive chain must replay cleanly under `revalidate`.
fn verify_presets() -> Vec<alt_verify::Diagnostic> {
    use alt_layout::presets;
    use alt_tensor::Shape;

    let s4 = || Shape::new([2, 16, 12, 12]);
    let s5 = || Shape::new([2, 16, 6, 12, 12]);
    let s3 = || Shape::new([2, 16, 12]);
    let s2 = || Shape::new([24, 36]);
    let built: Vec<(&str, Result<alt_layout::Layout, alt_layout::LayoutError>)> = vec![
        ("nohw", Ok(presets::nohw(s4()))),
        ("nhwo", presets::nhwo(s4())),
        ("hwon", presets::hwon(s4())),
        ("ndhwo", presets::ndhwo(s5())),
        ("nwo", presets::nwo(s3())),
        ("channels_last", presets::channels_last(s4())),
        ("channel_tiled", presets::channel_tiled(s4(), 4)),
        ("c2d_output_tiled", presets::c2d_output_tiled(s4(), 4, 4, 4)),
        (
            "c2d_input_tiled",
            presets::c2d_input_tiled(s4(), 4, 5, 5, 1, 3, 3),
        ),
        (
            "c2d_weight_tiled",
            presets::c2d_weight_tiled(Shape::new([16, 16, 3, 3]), 4, 4),
        ),
        ("transposed2d", presets::transposed2d(s2())),
        ("gmm_tiled", presets::gmm_tiled(s2(), 4, 4)),
        (
            "conv_output_tiled_nd",
            presets::conv_output_tiled_nd(s4(), &[4, 4], 4),
        ),
        (
            "conv_input_tiled_nd",
            presets::conv_input_tiled_nd(s4(), 4, &[4, 4], &[1, 1], &[3, 3]),
        ),
        (
            "conv_weight_tiled_nd",
            presets::conv_weight_tiled_nd(Shape::new([16, 16, 3, 3]), 4, 4),
        ),
        (
            "tconv_weight_tiled_nd",
            presets::tconv_weight_tiled_nd(Shape::new([16, 16, 3, 3]), 4, 4),
        ),
        (
            "batch_gmm_tiled",
            presets::batch_gmm_tiled(Shape::new([2, 24, 36]), 4, 4),
        ),
        (
            "conv_output_tiled2_nd",
            presets::conv_output_tiled2_nd(Shape::new([2, 16, 16, 16]), &[4, 4], &[2, 2], 4, 2),
        ),
        (
            "channel_tiled_swizzled",
            presets::channel_tiled_swizzled(s4(), 4, 2),
        ),
        (
            "morton_spatial",
            presets::morton_spatial(Shape::new([2, 16, 16, 16])),
        ),
        ("block_diag_rotated", presets::block_diag_rotated(s4(), 3)),
    ];

    let mut diags = Vec::new();
    for (name, layout) in built {
        let group = format!("preset `{name}`");
        match layout {
            Err(e) => diags.push(alt_verify::Diagnostic::new(
                alt_verify::code_for(&e),
                group,
                format!("construction failed: {e}"),
            )),
            Ok(l) => {
                if let Err(e) = l.revalidate() {
                    diags.push(alt_verify::Diagnostic::new(
                        alt_verify::code_for(&e),
                        group,
                        format!("illegal primitive chain: {e}"),
                    ));
                }
            }
        }
    }
    diags
}

/// `altc verify`: statically verify a model's compiled artifact (layout
/// legality, IR well-formedness, race detection) or, with `--presets`,
/// the built-in layout preset library. Exits 1 if any diagnostic fires.
fn run_verify(rest: &[String]) -> i32 {
    let mut model = "r18".to_string();
    let mut platform = "intel".to_string();
    let mut budget = 0u64;
    let mut batch = 1i64;
    let mut seed = 0u64;
    let mut json = false;
    let mut presets = false;
    let mut explain = false;
    let mut advanced_layouts = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let res: Result<(), String> = (|| {
            match a.as_str() {
                "--model" | "-m" => model = value("--model")?,
                "--platform" | "-p" => platform = value("--platform")?,
                "--budget" | "-b" => {
                    budget = value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?
                }
                "--batch" => {
                    batch = value("--batch")?
                        .parse()
                        .map_err(|e| format!("--batch: {e}"))?
                }
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--json" => json = true,
                "--presets" => presets = true,
                "--explain" => explain = true,
                "--advanced-layouts" => advanced_layouts = true,
                "--help" | "-h" => {
                    println!(
                        "usage: altc verify [--model NAME] [--platform NAME] [--budget N]\n\
                         \x20                  [--batch N] [--seed N] [--json] [--presets]\n\
                         \x20                  [--explain] [--advanced-layouts]\n\
                         \n\
                         Runs the static verifier (layout legality, IR well-formedness,\n\
                         dependence-based race detection) over the model's compiled\n\
                         artifact. --budget 0 (the default) verifies the unoptimized\n\
                         lowering; a positive budget tunes first and verifies the winning\n\
                         layouts and schedules. --presets instead checks every layout\n\
                         preset constructor. --explain prints, for every diagnostic the\n\
                         integer-set engine proved, a concrete loop-index witness\n\
                         demonstrating the violation. --advanced-layouts tunes with the\n\
                         `xform` knob (swizzle / block-diagonal / Morton) enabled before\n\
                         verifying. Exit code 1 means diagnostics were found."
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument `{other}` (try --help)")),
            }
            Ok(())
        })();
        if let Err(e) = res {
            eprintln!("error: {e}");
            return 2;
        }
    }

    let (subject, diags, stats) = if presets {
        (
            "presets".to_string(),
            verify_presets(),
            alt_verify::VerifyStats::default(),
        )
    } else {
        let graph = match build_model(&model, batch) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        let machine = match build_platform(&platform) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        let compiler = Compiler::new(machine).with_options(CompileOptions {
            joint_budget: (budget as f64 * 0.4) as u64,
            loop_budget: budget - (budget as f64 * 0.4) as u64,
            seed,
            advanced_layouts,
            ..CompileOptions::default()
        });
        let compiled = if budget == 0 {
            compiler.compile_unoptimized(&graph)
        } else {
            eprintln!(
                "tuning {model} (batch {batch}) for {} with budget {budget}...",
                machine.name
            );
            compiler.compile(&graph)
        };
        let (diags, stats) = compiled.verify_with_stats();
        (format!("{model} on {}", machine.name), diags, stats)
    };

    if json {
        let stats_json = serde_json::json!({
            "verify.set_queries": stats.set_queries,
            "verify.set_emptiness_us": stats.set_emptiness_us,
            "verify.conservative_recovered": stats.conservative_recovered,
        });
        let record = serde_json::json!({
            "subject": subject,
            "ok": diags.is_empty(),
            "diagnostics": diags
                .iter()
                .map(|d| {
                    serde_json::json!({
                        "code": d.code,
                        "group": d.group,
                        "detail": d.detail,
                        "witness": d.witness,
                    })
                })
                .collect::<Vec<_>>(),
            "stats": stats_json,
        });
        println!("{}", serde_json::to_string_pretty(&record).unwrap());
    } else {
        if diags.is_empty() {
            println!("{subject}: ok (no diagnostics)");
        } else {
            println!("{subject}: {} diagnostic(s)", diags.len());
            for d in &diags {
                println!("  {d}");
                if explain {
                    match &d.witness {
                        Some(w) => println!("    witness: {w}"),
                        None => println!("    witness: (none — interval verdict)"),
                    }
                }
            }
        }
        if explain {
            println!(
                "set engine: {} queries, {} us, {} conservative rejection(s) recovered",
                stats.set_queries, stats.set_emptiness_us, stats.conservative_recovered
            );
        }
    }
    i32::from(!diags.is_empty())
}

/// `altc store <stats|verify|gc|export> <PATH> [--json]`: inspect and
/// maintain a durable tuning store without running a compile.
fn run_store(rest: &[String]) -> i32 {
    const USAGE: &str = "usage: altc store <stats|verify|gc|export> <STORE> [--json]";
    let mut cmd: Option<String> = None;
    let mut path: Option<String> = None;
    let mut json = false;
    for a in rest {
        match a.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "{USAGE}\n\n\
                     stats    record counts per kind, payload/file/quarantine bytes,\n\
                     \x20        and what recovery found when the store was opened\n\
                     verify   deep frame-by-frame integrity check (header, lengths,\n\
                     \x20        checksums); exits 1 when any corruption is found\n\
                     gc       rewrite the segment to drop superseded bytes and\n\
                     \x20        remove the quarantine file\n\
                     export   dump every record as one JSON object per line\n\
                     \n\
                     The store path can also come from the ALT_STORE environment\n\
                     variable when the positional argument is omitted."
                );
                return 0;
            }
            other if !other.starts_with('-') && cmd.is_none() => cmd = Some(other.to_string()),
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }
    let Some(cmd) = cmd else {
        eprintln!("{USAGE}");
        return 2;
    };
    let path = path.or_else(|| std::env::var("ALT_STORE").ok().filter(|s| !s.is_empty()));
    let Some(path) = path else {
        eprintln!("error: no store path (pass one or set ALT_STORE)");
        return 2;
    };
    let p = std::path::Path::new(&path);

    match cmd.as_str() {
        "stats" => {
            let store = match alt_store::Store::open_readonly(p) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let s = store.stats();
            if json {
                let record = serde_json::json!({
                    "path": path,
                    "records": s.records,
                    "measurements": s.measurements,
                    "winners": s.winners,
                    "unknown": s.unknown,
                    "payload_bytes": s.payload_bytes,
                    "file_bytes": s.file_bytes,
                    "quarantine_bytes": s.quarantine_bytes,
                    "recovery": serde_json::json!({
                        "valid_records": s.recovery.valid_records,
                        "corrupt_events": s.recovery.corrupt_events,
                        "quarantined_bytes": s.recovery.quarantined_bytes,
                        "pending_tail_bytes": s.recovery.pending_tail_bytes,
                        "corruption": s.recovery.corruption.map(|c| c.to_string()),
                    }),
                });
                println!("{}", serde_json::to_string_pretty(&record).unwrap());
            } else {
                println!("{path}:");
                println!(
                    "  {} records ({} measurements, {} winners{})",
                    s.records,
                    s.measurements,
                    s.winners,
                    if s.unknown > 0 {
                        format!(", {} unknown", s.unknown)
                    } else {
                        String::new()
                    }
                );
                println!(
                    "  {} payload bytes in a {}-byte segment",
                    s.payload_bytes, s.file_bytes
                );
                match s.recovery.corruption {
                    Some(c) => println!(
                        "  recovery: {} valid records kept, {} tail bytes pending ({c})",
                        s.recovery.valid_records, s.recovery.pending_tail_bytes
                    ),
                    None => println!("  recovery: clean"),
                }
                if s.quarantine_bytes > 0 {
                    println!(
                        "  quarantine: {} bytes (drop with `altc store gc`)",
                        s.quarantine_bytes
                    );
                }
            }
            0
        }
        "verify" => {
            let r = match alt_store::verify_path(p) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let clean = r.clean();
            if json {
                let record = serde_json::json!({
                    "path": path,
                    "ok": clean,
                    "header": format!("{:?}", r.header),
                    "valid_records": r.valid_records,
                    "valid_bytes": r.valid_bytes,
                    "tail_bytes": r.tail_bytes,
                    "corruption": r.corruption.map(|c| c.to_string()),
                    "quarantine_bytes": r.quarantine_bytes,
                });
                println!("{}", serde_json::to_string_pretty(&record).unwrap());
            } else if clean {
                println!(
                    "{path}: ok ({} records, {} bytes)",
                    r.valid_records, r.valid_bytes
                );
            } else {
                println!(
                    "{path}: {} valid records ({} bytes), then {} corrupt tail bytes{}",
                    r.valid_records,
                    r.valid_bytes,
                    r.tail_bytes,
                    r.corruption.map(|c| format!(" ({c})")).unwrap_or_default()
                );
                println!("  a writer open will quarantine the tail and continue");
            }
            i32::from(!clean)
        }
        "gc" => {
            let store = match alt_store::Store::open(p) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            match store.gc() {
                Ok(g) => {
                    if json {
                        let record = serde_json::json!({
                            "path": path,
                            "records": g.records,
                            "bytes_before": g.bytes_before,
                            "bytes_after": g.bytes_after,
                            "quarantine_removed": g.quarantine_removed,
                        });
                        println!("{}", serde_json::to_string_pretty(&record).unwrap());
                    } else {
                        println!(
                            "{path}: {} records, {} -> {} bytes, {} quarantine bytes removed",
                            g.records, g.bytes_before, g.bytes_after, g.quarantine_removed
                        );
                    }
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    2
                }
            }
        }
        "export" => {
            let store = match alt_store::Store::open_readonly(p) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            for r in store.records() {
                let decoded = match r.kind {
                    alt_store::kind::MEASUREMENT => alt_sim::decode_measurement(&r.payload).map(
                        |(profile_fp, program_fp, c)| {
                            serde_json::json!({
                                "profile_fp": format!("{profile_fp:016x}"),
                                "program_fp": format!("{program_fp:016x}"),
                                "latency_s": c.latency_s,
                                "instructions": c.instructions,
                                "flops": c.flops,
                            })
                        },
                    ),
                    alt_store::kind::WINNER => std::str::from_utf8(&r.payload)
                        .ok()
                        .and_then(|t| serde_json::from_str::<serde_json::Value>(t).ok()),
                    _ => None,
                };
                let record = serde_json::json!({
                    "kind": alt_store::kind::name(r.kind),
                    "key": format!("{:016x}", r.key),
                    "payload_bytes": r.payload.len(),
                    "decoded": decoded,
                });
                println!("{}", serde_json::to_string(&record).unwrap());
            }
            0
        }
        other => {
            eprintln!("error: unknown store command `{other}` (try --help)");
            2
        }
    }
}

fn build_model(name: &str, batch: i64) -> Result<Graph, String> {
    Ok(match name {
        "r18" | "resnet18" => resnet18(batch),
        "mv2" | "mobilenetv2" => mobilenet_v2(batch),
        "bert-base" | "bb" => bert_base(batch),
        "bert-tiny" | "bt" => bert_tiny(batch),
        "r3d" | "resnet3d" => resnet3d_18(batch),
        other => return Err(format!("unknown model `{other}` (try --help)")),
    })
}

fn build_platform(name: &str) -> Result<MachineProfile, String> {
    Ok(match name {
        "intel" | "cpu" => intel_cpu(),
        "gpu" | "nvidia" => nvidia_gpu(),
        "arm" => arm_cpu(),
        other => return Err(format!("unknown platform `{other}` (try --help)")),
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("report") {
        std::process::exit(run_report(&argv[1..]));
    }
    if argv.first().map(String::as_str) == Some("inspect") {
        std::process::exit(run_inspect(&argv[1..]));
    }
    if argv.first().map(String::as_str) == Some("profile") {
        std::process::exit(run_profile(&argv[1..]));
    }
    if argv.first().map(String::as_str) == Some("run") {
        std::process::exit(run_run(&argv[1..]));
    }
    if argv.first().map(String::as_str) == Some("verify") {
        std::process::exit(run_verify(&argv[1..]));
    }
    if argv.first().map(String::as_str) == Some("store") {
        std::process::exit(run_store(&argv[1..]));
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let graph = match build_model(&args.model, args.batch) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.dot {
        print!("{}", alt_tensor::viz::to_dot(&graph));
        return;
    }
    let profile = match build_platform(&args.platform) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let joint = (args.budget as f64 * 0.4) as u64;
    // A checkpoint path without an explicit interval still wants periodic
    // writes, not just halt-time ones.
    let checkpoint_every = match (args.checkpoint_every, &args.checkpoint) {
        (0, Some(_)) => 50,
        (n, _) => n,
    };
    if let Some(path) = &args.resume {
        if !std::path::Path::new(path).exists() {
            eprintln!("error: --resume {path}: no such file");
            std::process::exit(2);
        }
    }
    let compiler = Compiler::new(profile).with_options(CompileOptions {
        joint_budget: joint,
        loop_budget: args.budget - joint,
        seed: args.seed,
        fault_rate: args.faults,
        checkpoint: args.checkpoint.clone(),
        checkpoint_every,
        resume: args.resume.clone(),
        jobs: args.jobs,
        verify: !args.no_verify,
        advanced_layouts: args.advanced_layouts,
        journal: args.journal.clone(),
        store: args.store.clone(),
        // An unopenable trace path degrades to a warning inside
        // `compile` (the run continues trace-less), matching the
        // journal and store contracts.
        trace: args.trace.clone(),
        timing: args.timing.is_some() || args.manifest.is_some(),
        progress: args.progress,
        ..CompileOptions::default()
    });

    eprintln!(
        "compiling {} (batch {}) for {} with budget {}...",
        args.model, args.batch, profile.name, args.budget
    );
    let t0 = std::time::Instant::now();
    let unopt = compiler.compile_unoptimized(&graph);
    let compiled = compiler.compile(&graph);
    let wall = t0.elapsed();

    if args.json {
        let record = serde_json::json!({
            "model": args.model,
            "platform": profile.name,
            "batch": args.batch,
            "budget": args.budget,
            "measurements": compiled.measurements(),
            "latency_ms": compiled.estimated_latency() * 1e3,
            "unoptimized_latency_ms": unopt.estimated_latency() * 1e3,
            "speedup": unopt.estimated_latency() / compiled.estimated_latency(),
            "compile_wall_s": wall.as_secs_f64(),
            "warm_start": compiled.warm_start(),
            "store_hits": compiled.store_stats().0,
            "store_misses": compiled.store_stats().1,
        });
        println!("{}", serde_json::to_string_pretty(&record).unwrap());
    } else {
        print!("{}", compiled.report());
        println!(
            "\nunoptimized: {:.3} ms -> tuned: {:.3} ms ({:.2}x, compiled in {:.1?})",
            unopt.estimated_latency() * 1e3,
            compiled.estimated_latency() * 1e3,
            unopt.estimated_latency() / compiled.estimated_latency(),
            wall
        );
    }
    if let Some(path) = &args.store {
        if compiled.warm_start() {
            eprintln!("warm start: winner replayed from store {path} (0 measurements)");
        } else {
            let (hits, misses) = compiled.store_stats();
            eprintln!("store {path}: {hits} hits, {misses} misses; inspect with `altc store stats {path}`");
        }
    }
    if let Some(path) = &args.trace {
        eprintln!("trace written to {path}; inspect with `altc report {path}`");
    }
    if let Some(path) = &args.journal {
        eprintln!("journal written to {path}; inspect with `altc inspect {path}`");
    }
    // The timing stream has its own sink: wall-clock records never mix
    // into the deterministic trace. Failures here cost the artifact, not
    // the compile (which already finished).
    if let Some(path) = &args.timing {
        match JsonlSink::create(path) {
            Ok(sink) => {
                let t = alt_telemetry::Telemetry::new(std::sync::Arc::new(sink));
                for r in compiled.timing_records() {
                    t.emit(r.clone());
                }
                t.flush();
                eprintln!("timing written to {path}; inspect with `altc report {path}`");
            }
            Err(e) => eprintln!("warning: --timing {path}: {e}; timing not written"),
        }
    }
    if let Some(path) = &args.manifest {
        if let Some(m) = compiled.timing_manifest() {
            let body = serde_json::to_string_pretty(m).unwrap_or_default();
            match std::fs::write(path, format!("{body}\n")) {
                Ok(()) => eprintln!("timing manifest written to {path}"),
                Err(e) => eprintln!("warning: --manifest {path}: {e}; manifest not written"),
            }
        }
    }
}
