//! ALT: a deep-learning compiler with joint graph-level data-layout and
//! operator-level loop optimization (EuroSys '23 reproduction).
//!
//! This crate is the user-facing facade over the full stack:
//!
//! ```
//! use alt_core::{Compiler, CompileOptions};
//! use alt_sim::intel_cpu;
//! use alt_tensor::{ops, ops::ConvCfg, Graph, Shape};
//!
//! // Describe a computation as a graph.
//! let mut g = Graph::new();
//! let x = g.add_input("x", Shape::new([1, 8, 18, 18]));
//! let w = g.add_param("w", Shape::new([16, 8, 3, 3]));
//! let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
//!
//! // Compile with a small tuning budget.
//! let compiler = Compiler::new(intel_cpu()).with_options(CompileOptions {
//!     joint_budget: 16,
//!     loop_budget: 16,
//!     ..CompileOptions::default()
//! });
//! let compiled = compiler.compile(&g);
//!
//! // Execute it on real data and inspect the result.
//! let inputs = alt_tensor::exec::random_bindings(&g, 0);
//! let outputs = compiled.run(&inputs);
//! assert_eq!(outputs[&y].shape().dims(), &[1, 16, 16, 16]);
//! ```

use std::collections::HashMap;

use alt_autotune::tuner::{FixedLayout, LayoutSearch, TuneConfig};
use alt_autotune::{tune_graph, FaultConfig, PpoWeights, TunerCheckpoint};
use alt_layout::{Layout, LayoutPlan, PropagationMode};
use alt_loopir::{lower, run_program, GraphSchedule, Program};
use alt_sim::{MachineProfile, Simulator};
use alt_telemetry::{Record, Telemetry, Timing};
use alt_tensor::{Graph, NdBuf, TensorId};

pub use alt_autotune::tuner::TuneResult;
pub use alt_telemetry::{JsonlSink, MemorySink, NoopSink, RunSummaryRecord, Sink};

/// Compilation options (a curated surface over the tuner configuration).
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Measurement budget for the joint layout+loop stage.
    pub joint_budget: u64,
    /// Measurement budget for the loop-only stage.
    pub loop_budget: u64,
    /// Layout template tiling levels (1 or 2).
    pub levels: u8,
    /// Append the advanced `xform` knob (XOR swizzle, block-diagonal
    /// remap, Morton interleave) to every layout template. Opt-in: the
    /// extra knob grows the pruned template spaces and shifts seeded
    /// trajectories.
    pub advanced_layouts: bool,
    /// Layout propagation mode.
    pub propagation: PropagationMode,
    /// Treat graph inputs as re-layoutable offline (single-operator
    /// benchmarking); end-to-end compilation should leave this `false`.
    pub free_input_layouts: bool,
    /// Random seed (compilation is fully deterministic given the seed).
    pub seed: u64,
    /// Pretrained PPO weights to warm-start the layout agents.
    pub pretrained: Option<PpoWeights>,
    /// Skip layout tuning and pin this layout family instead.
    pub fixed_layout: Option<FixedLayout>,
    /// Layout candidate generator (PPO or random).
    pub layout_search: LayoutSearch,
    /// Injected fault rate in `[0, 1)` for robustness testing: the rate
    /// is split between compile failures, measurement timeouts, and
    /// noisy latencies ([`FaultConfig::uniform`]). Zero disables
    /// injection entirely (the run is bit-identical to one without it).
    pub fault_rate: f64,
    /// Write tuner checkpoints to this path during compilation.
    pub checkpoint: Option<String>,
    /// Checkpoint every N consumed budget units (0 = only on halt).
    pub checkpoint_every: u64,
    /// Resume tuning from a checkpoint file written by a previous run
    /// with the same graph and seed.
    pub resume: Option<String>,
    /// Worker threads for candidate measurement (0 or 1 = sequential).
    /// Any value produces a bit-identical compilation result, trace, and
    /// budget accounting: workers only prewarm the memoized simulation
    /// cache, while all accounting stays on one thread.
    pub jobs: usize,
    /// Statically verify every lowered candidate before simulation.
    /// Rejected candidates are dropped without consuming any measurement
    /// budget (counted under `verify.rejected`). On by default.
    pub verify: bool,
    /// Write the search journal (one JSONL record per candidate, layout
    /// visit/commit, plus a run header and summary) to this path. A
    /// resumed run appends to the journal its predecessor started, so
    /// the finished file reads as one uninterrupted run. Inspect with
    /// `altc inspect <path>`.
    pub journal: Option<String>,
    /// Path to a durable tuning store. Measurements hit the store before
    /// the simulator, and a completed run publishes its winner; a later
    /// compile of the same task short-circuits to the stored winner
    /// without spending any budget. A store that cannot be opened (bad
    /// magic, incompatible version, held writer lock) degrades to a
    /// warning — compilation proceeds store-less rather than failing.
    pub store: Option<String>,
    /// Write the deterministic telemetry trace (JSONL) to this path. A
    /// trace that cannot be opened degrades to a warning — compilation
    /// proceeds trace-less (falling back to any sink attached via
    /// [`Compiler::with_telemetry`]) rather than failing.
    pub trace: Option<String>,
    /// Wall-clock self-profiling: phase attribution across the whole
    /// pipeline (candidate generation, lowering, GBT scoring,
    /// simulation, retries, checkpoints) plus store/memo-cache latency
    /// histograms. Observation-only — the timing stream has its own
    /// records and manifest on [`CompiledGraph`], never the trace or
    /// journal, so the compiled result is bit-identical either way.
    pub timing: bool,
    /// Print a throttled live progress heartbeat to stderr during
    /// tuning (budget fraction, candidates/s, cache and store hit
    /// rates, ETA). Reads statistics only; cannot change a run.
    pub progress: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            joint_budget: 300,
            loop_budget: 700,
            levels: 1,
            advanced_layouts: false,
            propagation: PropagationMode::Full,
            free_input_layouts: false,
            seed: 0,
            pretrained: None,
            fixed_layout: None,
            layout_search: LayoutSearch::Ppo,
            fault_rate: 0.0,
            checkpoint: None,
            checkpoint_every: 0,
            resume: None,
            jobs: 1,
            verify: true,
            journal: None,
            store: None,
            trace: None,
            timing: false,
            progress: false,
        }
    }
}

/// FNV-1a over a canonical rendering of the result-relevant options:
/// the run manifest's configuration fingerprint. Two compiles with the
/// same fingerprint (and graph and machine) produce bit-identical
/// results; observability knobs (trace/timing/progress paths) are
/// excluded so attaching them never changes the fingerprint, and so is
/// `jobs` (any worker count is bit-identical; it is an environment
/// fact, recorded in the manifest's `env` block instead).
fn config_fingerprint(o: &CompileOptions) -> u64 {
    let canonical = format!(
        "joint={} loop={} levels={} adv={} prop={:?} free={} seed={} pretrained={} fixed={:?} \
         search={:?} faults={} verify={}",
        o.joint_budget,
        o.loop_budget,
        o.levels,
        o.advanced_layouts,
        o.propagation,
        o.free_input_layouts,
        o.seed,
        o.pretrained.is_some(),
        o.fixed_layout,
        o.layout_search,
        o.fault_rate,
        o.verify,
    );
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in canonical.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The ALT compiler for one target machine.
#[derive(Clone, Debug)]
pub struct Compiler {
    profile: MachineProfile,
    options: CompileOptions,
    telemetry: Telemetry,
}

impl Compiler {
    /// Creates a compiler with default options (telemetry disabled).
    pub fn new(profile: MachineProfile) -> Self {
        Self {
            profile,
            options: CompileOptions::default(),
            telemetry: Telemetry::noop(),
        }
    }

    /// Replaces the compilation options.
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a telemetry sink: every subsequent `compile` emits a
    /// structured trace (one measurement record per budget unit, PPO and
    /// cost-model records, aggregated simulator counters, and a final run
    /// summary) through the sink.
    pub fn with_telemetry(mut self, sink: std::sync::Arc<dyn Sink>) -> Self {
        self.telemetry = Telemetry::new(sink);
        self
    }

    /// The target machine profile.
    pub fn profile(&self) -> &MachineProfile {
        &self.profile
    }

    /// Compiles a graph: joint layout+loop auto-tuning followed by
    /// lowering to an executable program.
    ///
    /// # Panics
    ///
    /// Panics when `options.resume` names a checkpoint that cannot be
    /// read or that does not match this graph and seed.
    pub fn compile(&self, graph: &Graph) -> CompiledGraph {
        let t0 = std::time::Instant::now();
        let o = &self.options;
        let resume = o.resume.as_ref().map(|path| {
            let ck = TunerCheckpoint::load(path).expect("loading checkpoint");
            ck.validate(graph, o.seed)
                .expect("checkpoint does not match this graph/seed");
            ck
        });
        // Observability plumbing must never kill a compile: a journal
        // that cannot be opened degrades to a warning and a no-op sink.
        let journal = match &o.journal {
            Some(path) => {
                let opened = if resume.is_some() {
                    alt_journal::Journal::jsonl_append(path)
                } else {
                    alt_journal::Journal::jsonl(path)
                };
                opened.unwrap_or_else(|e| {
                    let err = alt_error::AltError::Journal {
                        detail: format!("cannot open {path}: {e}"),
                    };
                    eprintln!("warning: {err}; continuing without a journal");
                    alt_journal::Journal::noop()
                })
            }
            None => alt_journal::Journal::noop(),
        };
        // Same contract for the trace sink: an unopenable `--trace` path
        // is a typed, survivable error — warn and continue trace-less
        // (falling back to any sink attached via `with_telemetry`).
        let telemetry = match &o.trace {
            Some(path) => match JsonlSink::create(path) {
                Ok(sink) => Telemetry::new(std::sync::Arc::new(sink)),
                Err(e) => {
                    let err = alt_error::AltError::Trace {
                        detail: format!("cannot open {path}: {e}"),
                    };
                    eprintln!("warning: {err}; continuing without a trace");
                    self.telemetry.clone()
                }
            },
            None => self.telemetry.clone(),
        };
        // Same contract for the durable store: open failures (foreign
        // file, incompatible version, held writer lock) cost the warm
        // tier, not the compilation.
        let store = o.store.as_ref().and_then(|path| {
            match alt_store::Store::open(std::path::Path::new(path)) {
                Ok(s) => Some(std::sync::Arc::new(s)),
                Err(e) => {
                    eprintln!("warning: {e}; continuing without a tuning store");
                    None
                }
            }
        });
        let timing = if o.timing {
            Timing::enabled()
        } else {
            Timing::disabled()
        };
        let cfg = TuneConfig {
            joint_budget: o.joint_budget,
            loop_budget: o.loop_budget,
            levels: o.levels,
            advanced_layouts: o.advanced_layouts,
            mode: o.propagation,
            free_input_layouts: o.free_input_layouts,
            seed: o.seed,
            pretrained: o.pretrained.clone(),
            fixed_layout: o.fixed_layout,
            layout_search: o.layout_search,
            telemetry: telemetry.clone(),
            faults: (o.fault_rate > 0.0).then(|| FaultConfig::uniform(o.fault_rate)),
            checkpoint_path: o.checkpoint.clone(),
            checkpoint_every: o.checkpoint_every,
            resume,
            jobs: o.jobs,
            verify: o.verify,
            journal,
            store,
            timing: timing.clone(),
            progress: o.progress,
            ..TuneConfig::default()
        };
        let result = tune_graph(graph, self.profile, cfg);
        let program = lower(graph, &result.plan, &result.sched);
        let run_summary = RunSummaryRecord {
            joint_budget: o.joint_budget,
            loop_budget: o.loop_budget,
            measurements: result.measurements,
            best_latency_s: result.latency,
            wall_s: t0.elapsed().as_secs_f64(),
        };
        if telemetry.is_enabled() {
            telemetry.emit(Record::RunSummary(run_summary.clone()));
            telemetry.flush();
        }
        // Materialize the timing stream (empty when `o.timing` is off).
        // The manifest must be read *before* `emit_to`: emission flushes
        // — and clears — the wall-clock registry.
        let timing_manifest = timing.manifest(
            &[
                ("os", serde_json::json!(std::env::consts::OS)),
                ("arch", serde_json::json!(std::env::consts::ARCH)),
                ("seed", serde_json::json!(o.seed)),
                ("jobs", serde_json::json!(o.jobs as u64)),
                ("joint_budget", serde_json::json!(o.joint_budget)),
                ("loop_budget", serde_json::json!(o.loop_budget)),
                ("measurements", serde_json::json!(result.measurements)),
                ("warm_start", serde_json::json!(result.warm_start)),
                ("store", serde_json::json!(o.store.is_some())),
                ("journal", serde_json::json!(o.journal.is_some())),
                ("wall_s", serde_json::json!(t0.elapsed().as_secs_f64())),
            ],
            config_fingerprint(o),
        );
        let timing_records = if timing.is_enabled() {
            let (t, sink) = Telemetry::memory();
            timing.emit_to(&t);
            sink.records()
        } else {
            Vec::new()
        };
        CompiledGraph {
            graph: graph.clone(),
            plan: result.plan.clone(),
            sched: result.sched.clone(),
            program,
            profile: self.profile,
            estimated_latency: result.latency,
            measurements: result.measurements,
            history: result.history.clone(),
            run_summary,
            warm_start: result.warm_start,
            store_hits: result.store_hits,
            store_misses: result.store_misses,
            timing_records,
            timing_manifest,
        }
    }

    /// Compiles without any tuning: identity layouts, naive schedules.
    /// Useful as a correctness reference and a "before" point.
    pub fn compile_unoptimized(&self, graph: &Graph) -> CompiledGraph {
        let plan = LayoutPlan::new(PropagationMode::Full);
        let sched = GraphSchedule::naive();
        let program = lower(graph, &plan, &sched);
        let estimated_latency = Simulator::new(self.profile).measure(&program);
        CompiledGraph {
            graph: graph.clone(),
            plan,
            sched,
            program,
            profile: self.profile,
            estimated_latency,
            measurements: 0,
            history: Vec::new(),
            run_summary: RunSummaryRecord {
                joint_budget: 0,
                loop_budget: 0,
                measurements: 0,
                best_latency_s: estimated_latency,
                wall_s: 0.0,
            },
            warm_start: false,
            store_hits: 0,
            store_misses: 0,
            timing_records: Vec::new(),
            timing_manifest: None,
        }
    }
}

/// A compiled, executable graph.
#[derive(Clone, Debug)]
pub struct CompiledGraph {
    graph: Graph,
    plan: LayoutPlan,
    sched: GraphSchedule,
    program: Program,
    profile: MachineProfile,
    estimated_latency: f64,
    measurements: u64,
    history: Vec<(u64, f64)>,
    run_summary: RunSummaryRecord,
    warm_start: bool,
    store_hits: u64,
    store_misses: u64,
    timing_records: Vec<Record>,
    timing_manifest: Option<serde_json::Value>,
}

impl CompiledGraph {
    /// Executes the compiled program on logical input/parameter buffers,
    /// returning logical buffers for every graph tensor.
    ///
    /// # Panics
    ///
    /// Panics if a binding is missing or has the wrong shape.
    pub fn run(&self, bindings: &HashMap<TensorId, NdBuf>) -> HashMap<TensorId, NdBuf> {
        run_program(&self.program, &self.graph, &self.plan, bindings)
    }

    /// Compiles the program into the native register-based kernel for
    /// the target machine profile. Cheap (one walk over the loop tree);
    /// callers that execute repeatedly should reuse the kernel.
    pub fn native_kernel(&self) -> alt_codegen::NativeKernel {
        alt_codegen::compile(&self.program, &self.profile)
    }

    /// Executes the compiled program through the native executor.
    /// Bit-identical to [`CompiledGraph::run`] by the `alt-codegen`
    /// contract, but orders of magnitude faster — the interpreter is the
    /// reference oracle, this is the runtime.
    ///
    /// # Panics
    ///
    /// Panics if a binding is missing or has the wrong shape.
    pub fn run_native(&self, bindings: &HashMap<TensorId, NdBuf>) -> HashMap<TensorId, NdBuf> {
        self.run_native_timed(bindings, &Timing::disabled()).0
    }

    /// [`CompiledGraph::run_native`] with wall-clock accounting: returns
    /// per-group and end-to-end native times, and — when `timing` is
    /// enabled — records a `native_exec` phase plus `native.group_us` /
    /// `native.run_us` wall histograms on the PR 8 timing layer (its own
    /// stream; never the deterministic trace).
    pub fn run_native_timed(
        &self,
        bindings: &HashMap<TensorId, NdBuf>,
        timing: &Timing,
    ) -> (HashMap<TensorId, NdBuf>, alt_codegen::NativeRunStats) {
        let kernel = self.native_kernel();
        let _phase = timing.phase("native_exec");
        let (out, stats) = kernel.run(
            &self.program,
            &self.graph,
            &self.plan,
            bindings,
            alt_codegen::default_threads(),
        );
        for (_, us) in &stats.group_us {
            timing.observe_us("native.group_us", *us as u64);
        }
        timing.observe_us("native.run_us", stats.total_us as u64);
        (out, stats)
    }

    /// Per-op calibration of the analytic cost model against a native
    /// run: simulator-predicted vs measured microseconds per lowered
    /// group on the target profile.
    pub fn native_calibration(
        &self,
        stats: &alt_codegen::NativeRunStats,
    ) -> alt_sim::CalibrationTable {
        alt_sim::calibrate(&self.profile_breakdown(self.profile), &stats.group_us)
    }

    /// Embeds a calibration table into the run's timing manifest under
    /// `native_calibration`. No-op when the graph was compiled without
    /// [`CompileOptions::timing`] (there is no manifest to extend).
    pub fn attach_native_calibration(&mut self, table: &alt_sim::CalibrationTable) {
        if let Some(serde_json::Value::Object(m)) = self.timing_manifest.as_mut() {
            m.insert("native_calibration".into(), table.to_json());
        }
    }

    /// The machine profile this graph was compiled (and tuned) for.
    pub fn target_profile(&self) -> &MachineProfile {
        &self.profile
    }

    /// The model-estimated latency on the target machine (seconds).
    pub fn estimated_latency(&self) -> f64 {
        self.estimated_latency
    }

    /// Measurements spent during tuning.
    pub fn measurements(&self) -> u64 {
        self.measurements
    }

    /// Tuning history: (budget used, measured latency).
    pub fn history(&self) -> &[(u64, f64)] {
        &self.history
    }

    /// Whether this compile short-circuited to a stored winner instead
    /// of searching (always `false` without a tuning store).
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// Durable-store measurement traffic during tuning: `(hits, misses)`.
    /// Zero on both counts when no store was attached.
    pub fn store_stats(&self) -> (u64, u64) {
        (self.store_hits, self.store_misses)
    }

    /// The telemetry run summary for the compilation that produced this
    /// graph (budgets, measurements consumed, best latency, wall time).
    pub fn run_summary(&self) -> &RunSummaryRecord {
        &self.run_summary
    }

    /// The wall-clock timing stream of the compilation: one
    /// [`Record::Timing`] phase tree plus the flushed wall histograms
    /// and counters. Empty unless [`CompileOptions::timing`] was set.
    /// These records belong to the timing sink, never the deterministic
    /// trace — write them wherever wall-clock data should go (`altc
    /// --timing`, `altc report`, Perfetto).
    pub fn timing_records(&self) -> &[Record] {
        &self.timing_records
    }

    /// The machine-readable per-run timing manifest: phase totals, wall
    /// histograms, environment facts, and the configuration
    /// fingerprint. `None` unless [`CompileOptions::timing`] was set.
    pub fn timing_manifest(&self) -> Option<&serde_json::Value> {
        self.timing_manifest.as_ref()
    }

    /// The layout chosen for a tensor.
    pub fn layout_of(&self, tensor: TensorId) -> Layout {
        self.plan.layout_of(&self.graph, tensor)
    }

    /// The final layout plan.
    pub fn plan(&self) -> &LayoutPlan {
        &self.plan
    }

    /// The final schedules.
    pub fn schedule(&self) -> &GraphSchedule {
        &self.sched
    }

    /// The lowered program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs the full static verifier (layout legality, IR
    /// well-formedness, race detection) over the compiled artifact.
    /// Returns every diagnostic found; an empty list means the program
    /// passed all three passes.
    pub fn verify(&self) -> Vec<alt_verify::Diagnostic> {
        alt_verify::verify_program(&self.graph, &self.plan, &self.program)
    }

    /// Like [`CompiledGraph::verify`], but also returns the set-engine
    /// activity counters (queries issued, emptiness time, conservative
    /// interval rejections the exact engine recovered).
    pub fn verify_with_stats(&self) -> (Vec<alt_verify::Diagnostic>, alt_verify::VerifyStats) {
        alt_verify::verify_program_with_stats(&self.graph, &self.plan, &self.program)
    }

    /// Full performance-counter profile on the target machine.
    pub fn profile_counters(&self, profile: MachineProfile) -> alt_sim::Counters {
        Simulator::new(profile).profile_counters(&self.program)
    }

    /// Structured cost attribution on the target machine: per-loop-path
    /// latency components rolled up per group, with the breakdown total
    /// bit-identical to [`CompiledGraph::estimated_latency`]'s model.
    pub fn profile_breakdown(&self, profile: MachineProfile) -> alt_sim::CostBreakdown {
        Simulator::new(profile).profile_program(&self.program)
    }

    /// A human-readable compilation report: per-tensor layouts and
    /// per-group fusion structure.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "estimated latency: {:.3} ms ({} measurements)\n",
            self.estimated_latency * 1e3,
            self.measurements
        ));
        out.push_str("layouts:\n");
        for (k, t) in self.graph.tensors().iter().enumerate() {
            let l = self.plan.layout_of(&self.graph, TensorId(k));
            if !l.is_identity() {
                out.push_str(&format!("  {}: {}\n", t.name, l));
            }
        }
        out.push_str("groups:\n");
        for g in &self.program.groups {
            out.push_str(&format!("  {}\n", g.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_sim::intel_cpu;
    use alt_tensor::exec::{random_bindings, run_graph};
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::Shape;

    fn sample_graph() -> (Graph, TensorId) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 8, 18, 18]));
        let w = g.add_param("w", Shape::new([16, 8, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let b = g.add_param("b", Shape::new([16]));
        let ba = ops::bias_add(&mut g, c, b, 1);
        let r = ops::relu(&mut g, ba);
        (g, r)
    }

    #[test]
    fn compiled_graph_matches_reference_execution() {
        let (g, out) = sample_graph();
        let compiler = Compiler::new(intel_cpu()).with_options(CompileOptions {
            joint_budget: 16,
            loop_budget: 16,
            free_input_layouts: true,
            seed: 3,
            ..CompileOptions::default()
        });
        let compiled = compiler.compile(&g);
        let bindings = random_bindings(&g, 0);
        let got = compiled.run(&bindings);
        let want = run_graph(&g, &bindings);
        let diff = want[out.0].max_abs_diff(&got[&out]);
        assert!(diff < 1e-3, "diff {diff}");
    }

    #[test]
    fn tuned_beats_unoptimized() {
        let (g, _) = sample_graph();
        let compiler = Compiler::new(intel_cpu()).with_options(CompileOptions {
            joint_budget: 24,
            loop_budget: 24,
            free_input_layouts: true,
            seed: 5,
            ..CompileOptions::default()
        });
        let tuned = compiler.compile(&g);
        let unopt = compiler.compile_unoptimized(&g);
        assert!(tuned.estimated_latency() < unopt.estimated_latency());
    }

    #[test]
    fn traced_compile_emits_full_budget_and_summary() {
        let (g, _) = sample_graph();
        let sink = std::sync::Arc::new(MemorySink::new());
        let compiler = Compiler::new(intel_cpu())
            .with_options(CompileOptions {
                joint_budget: 16,
                loop_budget: 16,
                free_input_layouts: true,
                seed: 3,
                ..CompileOptions::default()
            })
            .with_telemetry(sink.clone());
        let compiled = compiler.compile(&g);
        assert_eq!(compiled.run_summary().measurements, 32);
        let records = sink.records();
        let measured = records
            .iter()
            .filter(|r| matches!(r, Record::Measurement(_)))
            .count() as u64;
        assert_eq!(measured, 32, "one trace record per budget unit");
        let summary = records.iter().find_map(|r| match r {
            Record::RunSummary(s) => Some(s),
            _ => None,
        });
        let summary = summary.expect("run summary record");
        assert_eq!(summary.joint_budget + summary.loop_budget, 32);
        assert_eq!(summary.measurements, 32);
        assert!(summary.best_latency_s > 0.0);
    }

    #[test]
    fn profiling_is_pure_observation() {
        // Profiling must be zero-overhead on the tuning path: a compile
        // followed by profiling is bit-identical to a compile without it,
        // and the breakdown total is exactly the tuner's scalar.
        let (g, _) = sample_graph();
        let options = CompileOptions {
            joint_budget: 12,
            loop_budget: 12,
            free_input_layouts: true,
            seed: 7,
            ..CompileOptions::default()
        };
        let plain = Compiler::new(intel_cpu())
            .with_options(options.clone())
            .compile(&g);
        let profiled = Compiler::new(intel_cpu()).with_options(options).compile(&g);
        let breakdown = profiled.profile_breakdown(intel_cpu());
        assert_eq!(plain.estimated_latency(), profiled.estimated_latency());
        assert_eq!(plain.history(), profiled.history());
        assert_eq!(breakdown.total_s, profiled.estimated_latency());
        // Profiling twice is idempotent, bit for bit.
        let again = profiled.profile_breakdown(intel_cpu());
        assert_eq!(breakdown.total_s, again.total_s);
    }

    #[test]
    fn parallel_jobs_compile_bit_identically() {
        let (g, _) = sample_graph();
        let base = CompileOptions {
            joint_budget: 12,
            loop_budget: 12,
            free_input_layouts: true,
            seed: 9,
            ..CompileOptions::default()
        };
        let seq = Compiler::new(intel_cpu())
            .with_options(base.clone())
            .compile(&g);
        let par = Compiler::new(intel_cpu())
            .with_options(CompileOptions { jobs: 4, ..base })
            .compile(&g);
        assert_eq!(
            seq.estimated_latency().to_bits(),
            par.estimated_latency().to_bits()
        );
        assert_eq!(seq.history(), par.history());
        assert_eq!(seq.report(), par.report());
    }

    #[test]
    fn verify_filter_is_budget_neutral() {
        // The template families the tuner explores never trip the static
        // verifier (no false positives), so a compile with the filter on
        // must be bit-identical — same budget accounting, same history,
        // same winner — to one with it off, and must emit zero
        // verify-rejection records.
        let (g, _) = sample_graph();
        let base = CompileOptions {
            joint_budget: 12,
            loop_budget: 12,
            free_input_layouts: true,
            seed: 9,
            ..CompileOptions::default()
        };
        let sink = std::sync::Arc::new(MemorySink::new());
        let on = Compiler::new(intel_cpu())
            .with_options(base.clone())
            .with_telemetry(sink.clone())
            .compile(&g);
        let off = Compiler::new(intel_cpu())
            .with_options(CompileOptions {
                verify: false,
                ..base
            })
            .compile(&g);
        assert_eq!(
            on.estimated_latency().to_bits(),
            off.estimated_latency().to_bits()
        );
        assert_eq!(on.history(), off.history());
        assert_eq!(on.measurements(), off.measurements());
        assert_eq!(on.report(), off.report());
        let rejections = sink
            .records()
            .iter()
            .filter(|r| matches!(r, Record::VerifyRejection(_)))
            .count();
        assert_eq!(rejections, 0, "legal candidates must never be rejected");
        // The final artifact passes its own verifier.
        assert!(on.verify().is_empty());
    }

    #[test]
    fn unopenable_journal_degrades_to_journal_less_compile() {
        // Satellite of the durable-store PR: a journal path in a
        // directory that does not exist must not kill the compile — it
        // warns and continues with a no-op sink.
        let (g, _) = sample_graph();
        let bad = std::env::temp_dir()
            .join("alt-core-no-such-dir")
            .join("nested")
            .join("run.jsonl");
        let compiler = Compiler::new(intel_cpu()).with_options(CompileOptions {
            joint_budget: 8,
            loop_budget: 8,
            free_input_layouts: true,
            journal: Some(bad.to_string_lossy().into_owned()),
            ..CompileOptions::default()
        });
        let compiled = compiler.compile(&g);
        assert!(compiled.estimated_latency() > 0.0);
        assert!(!bad.exists());
    }

    #[test]
    fn unopenable_trace_degrades_to_trace_less_compile() {
        // Parity with the journal contract: a `--trace` path in a
        // directory that does not exist is a typed, survivable
        // `AltError::Trace` — the compile warns and continues with
        // whatever sink `with_telemetry` attached (here: none).
        let (g, _) = sample_graph();
        let bad = std::env::temp_dir()
            .join("alt-core-no-such-dir")
            .join("nested")
            .join("trace.jsonl");
        let options = CompileOptions {
            joint_budget: 8,
            loop_budget: 8,
            free_input_layouts: true,
            seed: 3,
            ..CompileOptions::default()
        };
        let plain = Compiler::new(intel_cpu())
            .with_options(options.clone())
            .compile(&g);
        let degraded = Compiler::new(intel_cpu())
            .with_options(CompileOptions {
                trace: Some(bad.to_string_lossy().into_owned()),
                ..options
            })
            .compile(&g);
        assert!(!bad.exists());
        // Degrading to trace-less must not change the compilation.
        assert_eq!(
            plain.estimated_latency().to_bits(),
            degraded.estimated_latency().to_bits()
        );
        assert_eq!(plain.history(), degraded.history());
        assert_eq!(plain.report(), degraded.report());
    }

    #[test]
    fn openable_trace_writes_the_deterministic_stream() {
        let (g, _) = sample_graph();
        let dir = std::env::temp_dir().join(format!("alt-core-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("trace.jsonl");
        let compiled = Compiler::new(intel_cpu())
            .with_options(CompileOptions {
                joint_budget: 8,
                loop_budget: 8,
                free_input_layouts: true,
                seed: 3,
                trace: Some(path.to_string_lossy().into_owned()),
                ..CompileOptions::default()
            })
            .compile(&g);
        let records = alt_telemetry::read_jsonl(path.to_str().unwrap()).expect("readable trace");
        let measured = records
            .iter()
            .filter(|r| matches!(r, Record::Measurement(_)))
            .count() as u64;
        assert_eq!(measured, compiled.measurements());
        assert!(
            !records.iter().any(|r| matches!(r, Record::Timing(_))),
            "timing records never enter the deterministic trace"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timing_manifest_and_records_do_not_change_the_compile() {
        let (g, _) = sample_graph();
        let options = CompileOptions {
            joint_budget: 12,
            loop_budget: 12,
            free_input_layouts: true,
            seed: 13,
            ..CompileOptions::default()
        };
        let plain = Compiler::new(intel_cpu())
            .with_options(options.clone())
            .compile(&g);
        let timed = Compiler::new(intel_cpu())
            .with_options(CompileOptions {
                timing: true,
                ..options
            })
            .compile(&g);
        // Observation-only: the winner is bit-identical.
        assert_eq!(
            plain.estimated_latency().to_bits(),
            timed.estimated_latency().to_bits()
        );
        assert_eq!(plain.history(), timed.history());
        assert_eq!(plain.report(), timed.report());
        // ... and timing-off compiles carry no timing data at all.
        assert!(plain.timing_records().is_empty());
        assert!(plain.timing_manifest().is_none());
        // The timing stream exists and is internally consistent.
        let phases = timed
            .timing_records()
            .iter()
            .find_map(|r| match r {
                Record::Timing(t) => Some(&t.phases),
                _ => None,
            })
            .expect("one timing record");
        assert!(phases.is_conserved(), "{phases:?}");
        assert!(phases.find("loop_stage").is_some());
        let manifest = timed.timing_manifest().expect("manifest present");
        assert_eq!(
            manifest["alt_timing_manifest"].as_u64(),
            Some(1),
            "{manifest}"
        );
        assert_eq!(manifest["env"]["seed"].as_u64(), Some(13));
        assert_eq!(
            manifest["env"]["measurements"].as_u64(),
            Some(timed.measurements())
        );
        assert_eq!(
            manifest["config_fp"].as_str().map(str::len),
            Some(16),
            "fingerprint is 16 hex chars"
        );
        // Conservation in the serialized tree: children inclusive sums
        // never exceed the parent, and exclusive = inclusive - children.
        fn check(node: &serde_json::Value) {
            let inclusive = node["inclusive_us"].as_u64().expect("inclusive");
            let children = node["children"].as_array().expect("children");
            let child_sum: u64 = children
                .iter()
                .map(|c| c["inclusive_us"].as_u64().expect("child inclusive"))
                .sum();
            assert!(child_sum <= inclusive, "{node}");
            assert_eq!(
                node["exclusive_us"].as_u64().expect("exclusive"),
                inclusive - child_sum,
                "{node}"
            );
            children.iter().for_each(check);
        }
        check(&manifest["phases"]);
    }

    #[test]
    fn store_warm_start_reproduces_cold_compile_bit_for_bit() {
        let (g, _) = sample_graph();
        let dir = std::env::temp_dir().join(format!("alt-core-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("tune.altstore");
        let options = CompileOptions {
            joint_budget: 12,
            loop_budget: 12,
            free_input_layouts: true,
            seed: 11,
            store: Some(path.to_string_lossy().into_owned()),
            ..CompileOptions::default()
        };
        let cold = Compiler::new(intel_cpu())
            .with_options(options.clone())
            .compile(&g);
        assert!(!cold.warm_start());
        let (hits, misses) = cold.store_stats();
        assert_eq!(hits, 0, "first run over an empty store cannot hit");
        assert!(misses > 0, "every simulated measurement is a store miss");
        let warm = Compiler::new(intel_cpu()).with_options(options).compile(&g);
        assert!(warm.warm_start(), "identical task must replay the winner");
        assert_eq!(warm.measurements(), 0, "a warm start spends no budget");
        assert_eq!(
            cold.estimated_latency().to_bits(),
            warm.estimated_latency().to_bits()
        );
        // Reports match except the header line (the warm run spends no
        // measurements, and the report says so).
        let body = |r: &CompiledGraph| {
            let full = r.report();
            full.split_once('\n').map(|(_, rest)| rest.to_owned())
        };
        assert_eq!(body(&cold), body(&warm));
        // The replayed artifact executes correctly.
        let bindings = random_bindings(&g, 0);
        let got = warm.run(&bindings);
        let want = run_graph(&g, &bindings);
        for (k, buf) in want.iter().enumerate() {
            let id = alt_tensor::TensorId(k);
            assert!(buf.max_abs_diff(&got[&id]) < 1e-3);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_mentions_layouts_and_groups() {
        let (g, _) = sample_graph();
        let compiler = Compiler::new(intel_cpu()).with_options(CompileOptions {
            joint_budget: 8,
            loop_budget: 8,
            free_input_layouts: true,
            ..CompileOptions::default()
        });
        let compiled = compiler.compile(&g);
        let report = compiled.report();
        assert!(report.contains("estimated latency"));
        assert!(report.contains("groups:"));
    }
}
