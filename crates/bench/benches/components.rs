//! Criterion micro-benchmarks for the substrate components: expression
//! rewriting, layout packing, lowering, the performance model, the cache
//! simulator and the cost model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use alt_autotune::features::extract_features;
use alt_autotune::{GbtModel, GbtParams};
use alt_layout::{presets, Layout, LayoutPlan, PropagationMode};
use alt_loopir::{lower, GraphSchedule};
use alt_sim::{intel_cpu, CacheSim, Simulator};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, NdBuf, Shape};

fn conv_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 64, 58, 58]));
    let w = g.add_param("w", Shape::new([64, 64, 3, 3]));
    let _ = ops::conv2d(&mut g, x, w, ConvCfg::default());
    g
}

fn tiled_plan(g: &Graph) -> LayoutPlan {
    let op = g.complex_ops()[0];
    let y = g.node(op).output;
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_output_layout(
        g,
        op,
        presets::c2d_output_tiled(g.tensor(y).shape.clone(), 8, 8, 16).unwrap(),
    );
    plan
}

fn bench_layout_rewrite(c: &mut Criterion) {
    let layout = presets::c2d_output_tiled(Shape::new([1, 64, 56, 56]), 8, 8, 16).unwrap();
    c.bench_function("layout/logical_to_physical", |b| {
        b.iter(|| layout.logical_to_physical(std::hint::black_box(&[0, 37, 23, 41])))
    });
}

fn bench_layout_pack(c: &mut Criterion) {
    let layout: Layout = presets::nhwo(Shape::new([1, 32, 32, 32])).unwrap();
    let buf = NdBuf::from_fn(Shape::new([1, 32, 32, 32]), |i| i as f32);
    c.bench_function("layout/pack_32k_elems", |b| b.iter(|| layout.pack(&buf)));
}

fn bench_lowering(c: &mut Criterion) {
    let g = conv_graph();
    let plan = tiled_plan(&g);
    let sched = GraphSchedule::naive();
    c.bench_function("lower/conv2d_tiled_layout", |b| {
        b.iter(|| lower(&g, &plan, &sched))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let g = conv_graph();
    let plan = tiled_plan(&g);
    let program = lower(&g, &plan, &GraphSchedule::naive());
    let sim = Simulator::new(intel_cpu());
    c.bench_function("sim/measure_conv2d", |b| b.iter(|| sim.measure(&program)));
}

fn bench_features(c: &mut Criterion) {
    let g = conv_graph();
    let plan = tiled_plan(&g);
    let program = lower(&g, &plan, &GraphSchedule::naive());
    c.bench_function("costmodel/extract_features", |b| {
        b.iter(|| extract_features(&program))
    });
}

fn bench_gbt(c: &mut Criterion) {
    let xs: Vec<Vec<f32>> = (0..256)
        .map(|i| (0..16).map(|f| ((i * 7 + f * 3) % 13) as f32).collect())
        .collect();
    let ys: Vec<f32> = xs.iter().map(|x| x[0] * 2.0 + x[3]).collect();
    c.bench_function("costmodel/gbt_fit_256x16", |b| {
        b.iter_batched(
            || (xs.clone(), ys.clone()),
            |(xs, ys)| GbtModel::fit(&xs, &ys, GbtParams::default()),
            BatchSize::SmallInput,
        )
    });
    let model = GbtModel::fit(&xs, &ys, GbtParams::default());
    c.bench_function("costmodel/gbt_predict", |b| {
        b.iter(|| model.predict(std::hint::black_box(&xs[0])))
    });
}

fn bench_cache_sim(c: &mut Criterion) {
    c.bench_function("cache/trace_64k_accesses", |b| {
        b.iter(|| {
            let mut sim = CacheSim::with_geometry(64 * 1024, 64, 4, 4);
            for i in 0..65536u64 {
                sim.access(i * 4);
            }
            sim.stats().misses
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_layout_rewrite,
        bench_layout_pack,
        bench_lowering,
        bench_simulator,
        bench_features,
        bench_gbt,
        bench_cache_sim
);
criterion_main!(benches);
