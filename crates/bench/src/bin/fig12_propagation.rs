//! Figure 12: the overhead of layout propagation.
//!
//! Two pad -> C2D(3x3) -> C2D(1x1) subgraphs are tuned four ways:
//!
//! * **Ansor** — loop-only tuning on the fixed baseline layout;
//! * **ALT-FP** — tune the first C2D's layouts, then *force-propagate*
//!   its output layout as the second C2D's input (no conversion, but the
//!   second conv is stuck with a layout tuned for the first);
//! * **ALT-BP** — tune the second C2D (including its input layout), then
//!   force the first C2D to *produce* that layout directly;
//! * **ALT** — tune both C2Ds independently and insert a layout
//!   conversion operator between them (Algorithm 1's second constraint).
//!
//! The paper's finding: independent tuning plus a cheap conversion beats
//! forced sharing — the conversion costs microseconds while a sub-optimal
//! layout costs much more.

use alt_autotune::space::{apply_layout_decision, build_layout_template, decode_layout_point};
use alt_autotune::tuner::{apply_fixed_layout, base_schedule};
use alt_autotune::{Measurer, Point};
use alt_baselines::baseline_layout;
use alt_bench::{scaled, BenchReport, TablePrinter};
use alt_layout::{LayoutPlan, PropagationMode};
use alt_loopir::{lower, GraphSchedule};
use alt_sim::{intel_cpu, nvidia_gpu, MachineProfile, Simulator};
use alt_tensor::{ops, ops::ConvCfg, Graph, OpId, Shape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn subgraph(hw: i64, o2: i64) -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 512, hw, hw]));
    let p = ops::pad2d_spatial(&mut g, x, 1);
    let w1 = g.add_param("w1", Shape::new([512, 512, 3, 3]));
    let c1 = ops::conv2d(&mut g, p, w1, ConvCfg::default());
    let w2 = g.add_param("w2", Shape::new([o2, 512, 1, 1]));
    let _c2 = ops::conv2d(&mut g, c1, w2, ConvCfg::default());
    g
}

/// Loop-tunes one op in place, returning the best latency.
fn loop_tune(
    g: &Graph,
    plan: &LayoutPlan,
    sched: &mut GraphSchedule,
    op: OpId,
    m: &mut Measurer,
    budget: u64,
    seed: u64,
) -> f64 {
    alt_bench::random_walk_loop_tune(g, plan, sched, op, m, budget, seed)
}

/// Joint layout+loop tuning of one op: try template candidates (seeded +
/// random), loop-tune each briefly, keep the best layout applied.
fn joint_tune(
    g: &Graph,
    plan: &mut LayoutPlan,
    sched: &mut GraphSchedule,
    op: OpId,
    m: &mut Measurer,
    budget: u64,
    seed: u64,
) {
    let tmpl = build_layout_template(g, op, 1).expect("complex op");
    let mut rng = StdRng::seed_from_u64(seed);
    let anchors = alt_autotune::tuner::seed_points(g, &tmpl);
    let n_candidates = anchors.len() + 4;
    let per = (budget / n_candidates as u64).max(4);
    let mut best: Option<(f64, Point)> = None;
    for c in 0..n_candidates {
        let point = if c < anchors.len() {
            anchors[c].clone()
        } else {
            tmpl.space.random_point(&mut rng)
        };
        let Ok(dec) = decode_layout_point(g, &tmpl, &point) else {
            continue;
        };
        let mut trial = plan.clone();
        apply_layout_decision(g, &mut trial, op, &dec, false);
        let mut trial_sched = sched.clone();
        let lat = loop_tune(g, &trial, &mut trial_sched, op, m, per, seed + c as u64);
        if best.as_ref().map(|b| lat < b.0).unwrap_or(true) {
            best = Some((lat, point));
        }
    }
    if let Some((_, point)) = best {
        if let Ok(dec) = decode_layout_point(g, &tmpl, &point) {
            apply_layout_decision(g, plan, op, &dec, false);
        }
    }
    loop_tune(g, plan, sched, op, m, budget / 3, seed + 100);
}

/// Per-group latency breakdown: (conv1, conversion, conv2) microseconds.
fn breakdown(
    g: &Graph,
    plan: &LayoutPlan,
    sched: &GraphSchedule,
    profile: MachineProfile,
) -> (f64, f64, f64) {
    let program = lower(g, plan, sched);
    let sim = Simulator::new(profile);
    let (mut c1, mut cv, mut c2) = (0.0, 0.0, 0.0);
    let mut seen_first = false;
    for (label, lat) in sim.group_latencies(&program) {
        if label.starts_with("convert") {
            cv += lat;
        } else if label.starts_with("c2d") {
            if !seen_first {
                c1 += lat;
                seen_first = true;
            } else {
                c2 += lat;
            }
        } else {
            // The pad group joins the first conv's bar (it absorbs layout
            // conversions in ALT).
            c1 += lat;
        }
    }
    (c1 * 1e6, cv * 1e6, c2 * 1e6)
}

fn main() {
    let budget = scaled(180);
    println!("Fig. 12 reproduction: layout propagation overhead (budget {budget}/conv)\n");
    let mut report = BenchReport::new("fig12");
    for (gname, hw, o2, profile) in [
        ("Sg#1-CPU", 7, 512, intel_cpu()),
        ("Sg#1-GPU", 7, 512, nvidia_gpu()),
        ("Sg#2-GPU", 14, 2048, nvidia_gpu()),
    ] {
        let g = subgraph(hw, o2);
        let ops_c = g.complex_ops();
        let (conv1, conv2) = (ops_c[0], ops_c[1]);
        let conv1_out = g.node(conv1).output;
        println!("## {gname} ({})", profile.name);
        let printer = TablePrinter::new(
            &[
                "system",
                "conv3x3 us",
                "convert us",
                "conv1x1 us",
                "total us",
            ],
            &[8, 12, 12, 12, 10],
        );
        for sys in ["Ansor", "ALT-FP", "ALT-BP", "ALT"] {
            let mut m = Measurer::new(&g, profile);
            let mut sched = base_schedule(&g);
            let mut plan = LayoutPlan::new(PropagationMode::Full);
            match sys {
                "Ansor" => {
                    apply_fixed_layout(&g, &mut plan, baseline_layout(&profile), false);
                    loop_tune(&g, &plan, &mut sched, conv1, &mut m, budget, 3);
                    loop_tune(&g, &plan, &mut sched, conv2, &mut m, budget, 3);
                }
                "ALT-FP" => {
                    // Tune conv1 jointly; conv2 reads conv1's output layout
                    // directly (no conversion, no own input layout).
                    joint_tune(&g, &mut plan, &mut sched, conv1, &mut m, budget, 3);
                    loop_tune(&g, &plan, &mut sched, conv2, &mut m, budget, 3);
                }
                "ALT-BP" => {
                    // Tune conv2 jointly with a *free* input layout: force
                    // conv1 to produce whatever conv2 wants.
                    let tmpl = build_layout_template(&g, conv2, 1).unwrap();
                    let mut rng = StdRng::seed_from_u64(3);
                    let anchors = alt_autotune::tuner::seed_points(&g, &tmpl);
                    let mut best: Option<(f64, Point)> = None;
                    for c in 0..anchors.len() + 4 {
                        let point = if c < anchors.len() {
                            anchors[c].clone()
                        } else {
                            tmpl.space.random_point(&mut rng)
                        };
                        let Ok(dec) = decode_layout_point(&g, &tmpl, &point) else {
                            continue;
                        };
                        let mut trial = plan.clone();
                        trial.assign_output_layout(&g, conv2, dec.output.clone());
                        if let Some(l) = &dec.input {
                            trial.set_layout(conv1_out, l.clone());
                        }
                        if let Some(l) = &dec.weight {
                            trial.set_layout(g.node(conv2).inputs[1], l.clone());
                        }
                        let mut ts = sched.clone();
                        let lat =
                            loop_tune(&g, &trial, &mut ts, conv2, &mut m, budget / 8, 3 + c as u64);
                        if best.as_ref().map(|b| lat < b.0).unwrap_or(true) {
                            best = Some((lat, point));
                        }
                    }
                    if let Some((_, point)) = best {
                        let dec = decode_layout_point(&g, &tmpl, &point).unwrap();
                        plan.assign_output_layout(&g, conv2, dec.output.clone());
                        if let Some(l) = &dec.input {
                            plan.set_layout(conv1_out, l.clone());
                        }
                        if let Some(l) = &dec.weight {
                            plan.set_layout(g.node(conv2).inputs[1], l.clone());
                        }
                    }
                    loop_tune(&g, &plan, &mut sched, conv2, &mut m, budget / 3, 9);
                    loop_tune(&g, &plan, &mut sched, conv1, &mut m, budget, 4);
                }
                _ => {
                    // Full ALT: tune both independently; a conversion is
                    // inserted between them (second constraint of Alg. 1).
                    joint_tune(&g, &mut plan, &mut sched, conv1, &mut m, budget, 3);
                    joint_tune(&g, &mut plan, &mut sched, conv2, &mut m, budget, 5);
                }
            }
            let (c1, cv, c2) = breakdown(&g, &plan, &sched, profile);
            printer.row(&[
                sys.to_string(),
                format!("{c1:.1}"),
                format!("{cv:.1}"),
                format!("{c2:.1}"),
                format!("{:.1}", c1 + cv + c2),
            ]);
            report.push(serde_json::json!({
                "subgraph": gname,
                "system": sys,
                "conv3x3_us": c1,
                "convert_us": cv,
                "conv1x1_us": c2,
            }));
        }
        println!();
    }
    println!(
        "Paper reference: ALT's conversion costs only 2-8 us while independent \
         tuning recovers more than that on the convolutions."
    );
    report.write();
}
