//! Table 3: performance-counter profile of the first ResNet-18 layer
//! under four layouts.
//!
//! The subgraph is padding -> C2D(I=3, O=64, K=7, stride 2) -> bias ->
//! ReLU on the Intel CPU profile. For each layout we loop-tune the
//! convolution, then report instructions, L1 loads / misses / stores and
//! latency — the paper's Table 3 columns (values on a 1e6 scale).
//!
//! Expected shape: `NOHW` needs the most instructions (poor reuse);
//! `NHWO` reuses inputs across output channels; the searched spatial-tiled
//! layout has the fewest L1 misses and the lowest latency thanks to
//! contiguous intra-tile storage.

use alt_autotune::tuner::base_schedule;
use alt_autotune::Measurer;
use alt_bench::{scaled, BenchReport, TablePrinter};
use alt_layout::{presets, LayoutPlan, PropagationMode};
use alt_loopir::lower;
use alt_sim::{intel_cpu, Simulator};
use alt_tensor::{ops, ops::ConvCfg, Graph, Shape, TensorId};
fn first_layer() -> (Graph, TensorId, TensorId, TensorId) {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 3, 224, 224]));
    let p = ops::pad2d_spatial(&mut g, x, 3);
    let w = g.add_param("w", Shape::new([64, 3, 7, 7]));
    let c = ops::conv2d(&mut g, p, w, ConvCfg::strided(2));
    let b = g.add_param("b", Shape::new([64]));
    let ba = ops::bias_add(&mut g, c, b, 1);
    let _ = ops::relu(&mut g, ba);
    (g, p, w, c)
}

struct LayoutCase {
    name: &'static str,
    plan: LayoutPlan,
}

fn cases(g: &Graph, p: TensorId, w: TensorId, c: TensorId) -> Vec<LayoutCase> {
    let conv = g.tensor(c).producer.unwrap();
    let out_shape = g.tensor(c).shape.clone();
    let in_shape = g.tensor(p).shape.clone();
    let w_shape = g.tensor(w).shape.clone();
    let mut out = Vec::new();

    // NHWO & rsIO.
    {
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.assign_output_layout(g, conv, presets::nhwo(out_shape.clone()).unwrap());
        plan.assign_input_layout(g, conv, p, presets::nhwo(in_shape.clone()).unwrap());
        plan.set_layout(
            w,
            presets::permuted(w_shape.clone(), &[2, 3, 1, 0]).unwrap(),
        );
        out.push(LayoutCase {
            name: "NHWO & rsIO",
            plan,
        });
    }
    // NOHW & OIrs (identity).
    {
        let plan = LayoutPlan::new(PropagationMode::Full);
        out.push(LayoutCase {
            name: "NOHW & OIrs",
            plan,
        });
    }
    // N O/ot H W ot (ot = 16, it = 3).
    {
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.assign_output_layout(
            g,
            conv,
            presets::channel_tiled(out_shape.clone(), 16).unwrap(),
        );
        plan.assign_input_layout(
            g,
            conv,
            p,
            presets::channel_tiled(in_shape.clone(), 3).unwrap(),
        );
        plan.set_layout(
            w,
            presets::conv_weight_tiled_nd(w_shape.clone(), 3, 16).unwrap(),
        );
        out.push(LayoutCase {
            name: "N O/ot HW ot",
            plan,
        });
    }
    // N H/ht W/wt O/ot ht wt ot (searched: ht=4, wt=16, ot=16, it=1).
    {
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.assign_output_layout(
            g,
            conv,
            presets::c2d_output_tiled(out_shape, 4, 16, 16).unwrap(),
        );
        plan.assign_input_layout(
            g,
            conv,
            p,
            presets::c2d_input_tiled(in_shape, 1, 4, 16, 2, 7, 7).unwrap(),
        );
        plan.set_layout(w, presets::conv_weight_tiled_nd(w_shape, 1, 16).unwrap());
        out.push(LayoutCase {
            name: "N H/ht W/wt O/ot ...",
            plan,
        });
    }
    out
}

fn main() {
    let budget = scaled(150);
    println!("Table 3 reproduction: first R18 layer profiled per layout (budget {budget})\n");
    let (g, p, w, c) = first_layer();
    let conv = g.tensor(c).producer.unwrap();
    let printer = TablePrinter::new(
        &[
            "layout",
            "#Inst(M)",
            "#L1-lds(M)",
            "#L1-mis(M)",
            "#L1-sts(M)",
            "Lat(ms)",
        ],
        &[22, 10, 11, 11, 11, 9],
    );
    let mut report = BenchReport::new("table3");
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for case in cases(&g, p, w, c) {
        // Loop-tune the convolution under this layout.
        let mut m = Measurer::new(&g, intel_cpu());
        let mut sched = base_schedule(&g);
        alt_bench::random_walk_loop_tune(&g, &case.plan, &mut sched, conv, &mut m, budget, 21);
        // Profile the whole subgraph with the tuned schedule.
        let program = lower(&g, &case.plan, &sched);
        let counters = Simulator::new(intel_cpu()).profile_counters(&program);
        printer.row(&[
            case.name.to_string(),
            format!("{:.1}", counters.instructions / 1e6),
            format!("{:.1}", counters.l1_loads / 1e6),
            format!("{:.2}", counters.l1_misses / 1e6),
            format!("{:.1}", counters.l1_stores / 1e6),
            format!("{:.3}", counters.latency_s * 1e3),
        ]);
        report.push(serde_json::json!({
            "layout": case.name,
            "instructions_m": counters.instructions / 1e6,
            "l1_loads_m": counters.l1_loads / 1e6,
            "l1_misses_m": counters.l1_misses / 1e6,
            "l1_stores_m": counters.l1_stores / 1e6,
            "latency_ms": counters.latency_s * 1e3,
        }));
        results.push((
            case.name.to_string(),
            counters.l1_misses,
            counters.latency_s,
        ));
    }
    println!(
        "\nPaper reference (ms / L1-mis x1e6): NHWO 0.34/9.7, NOHW 0.49/4.5, \
         N O/ot HW ot 0.37/9.9, searched tiled 0.25/3.9 — the searched layout \
         has the fewest misses and the lowest latency."
    );
    let tiled = results.last().unwrap();
    let best_other = results[..results.len() - 1]
        .iter()
        .map(|r| r.2)
        .fold(f64::MAX, f64::min);
    println!(
        "Here: searched tiled layout latency {:.3} ms vs best fixed {:.3} ms.",
        tiled.2 * 1e3,
        best_other * 1e3
    );
    report.write();
}
