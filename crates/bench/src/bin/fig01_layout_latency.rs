//! Figure 1: C2D and GMM latency under different data layouts.
//!
//! Reproduces the paper's motivating observation: the best layout is
//! configuration- and platform-dependent, and picking it well improves
//! loop optimization substantially. For each operator configuration we
//! loop-tune under each fixed layout and report the tuned latency.
//!
//! * Fig. 1a/1b — C2D under `NOHW` / `NHWO` / `HWON` on the Intel CPU and
//!   NVIDIA GPU profiles.
//! * Fig. 1c/1d — GMM under `KN` / `NK` / `NKn` on the same profiles.

use std::collections::HashMap;

use alt_autotune::tuner::base_schedule;
use alt_autotune::Measurer;
use alt_bench::{fmt_latency, scaled, BenchReport, TablePrinter};
use alt_layout::{presets, Layout, LayoutPlan, PropagationMode};
use alt_sim::{intel_cpu, nvidia_gpu, MachineProfile};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape, TensorId};

/// Loop-tunes one operator under a fixed layout plan; returns best latency.
fn loop_tune(
    graph: &Graph,
    plan: &LayoutPlan,
    profile: MachineProfile,
    budget: u64,
    seed: u64,
) -> f64 {
    let op = graph.complex_ops()[0];
    let mut measurer = Measurer::new(graph, profile);
    let mut sched = base_schedule(graph);
    alt_bench::random_walk_loop_tune(graph, plan, &mut sched, op, &mut measurer, budget, seed)
}

fn c2d_configs() -> Vec<(String, Graph)> {
    // Sampled from widely-used settings (different channels, strides,
    // sizes), mirroring the paper's 24-28 configurations.
    let mut out = Vec::new();
    let settings: &[(i64, i64, i64, i64, i64, i64)] = &[
        // (n, i, o, hw, k, stride)
        (1, 3, 64, 226, 3, 1),
        (1, 16, 64, 58, 3, 1),
        (1, 32, 64, 58, 3, 1),
        (1, 64, 64, 58, 3, 1),
        (1, 64, 128, 58, 3, 1),
        (1, 128, 128, 30, 3, 1),
        (1, 128, 256, 30, 3, 1),
        (1, 256, 256, 16, 3, 1),
        (1, 512, 512, 9, 3, 1),
        (1, 64, 64, 57, 3, 2),
        (1, 128, 128, 31, 3, 2),
        (1, 32, 32, 58, 1, 1),
        (1, 256, 64, 16, 1, 1),
        (16, 32, 64, 30, 3, 1),
        (16, 64, 128, 16, 3, 1),
        (16, 128, 256, 16, 1, 1),
    ];
    for &(n, i, o, hw, k, st) in settings {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([n, i, hw, hw]));
        let w = g.add_param("w", Shape::new([o, i, k, k]));
        let _ = ops::conv2d(&mut g, x, w, ConvCfg::strided(st));
        out.push((format!("n{n}i{i}o{o}s{hw}k{k}st{st}"), g));
    }
    out
}

fn gmm_configs() -> Vec<(String, Graph)> {
    let mut out = Vec::new();
    let settings: &[(i64, i64, i64)] = &[
        (64, 64, 64),
        (128, 128, 128),
        (256, 256, 256),
        (512, 512, 512),
        (1024, 1024, 1024),
        (2048, 2048, 2048),
        (128, 768, 768),
        (128, 768, 3072),
        (128, 3072, 768),
        (512, 64, 512),
        (64, 2048, 64),
        (256, 1024, 256),
        (32, 512, 1024),
        (1024, 256, 64),
        (2048, 128, 128),
        (384, 384, 384),
    ];
    for &(m, k, n) in settings {
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new([m, k]));
        let b = g.add_param("b", Shape::new([k, n]));
        let _ = ops::gmm(&mut g, a, b);
        out.push((format!("m{m}k{k}n{n}"), g));
    }
    out
}

fn c2d_layouts(g: &Graph) -> Vec<(&'static str, LayoutPlan)> {
    let op = g.complex_ops()[0];
    let node = g.node(op);
    let (x, w, y) = (node.inputs[0], node.inputs[1], node.output);
    let out_shape = g.tensor(y).shape.clone();
    let in_shape = g.tensor(x).shape.clone();
    let w_shape = g.tensor(w).shape.clone();
    let mk = |out: Layout, inp: Layout, wt: Layout| {
        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.set_layout(y, out);
        plan.set_layout(x, inp);
        plan.set_layout(w, wt);
        plan
    };
    vec![
        (
            "NOHW",
            mk(
                Layout::identity(out_shape.clone()),
                Layout::identity(in_shape.clone()),
                Layout::identity(w_shape.clone()),
            ),
        ),
        (
            "NHWO",
            mk(
                presets::nhwo(out_shape.clone()).unwrap(),
                presets::nhwo(in_shape.clone()).unwrap(),
                presets::permuted(w_shape.clone(), &[2, 3, 1, 0]).unwrap(),
            ),
        ),
        (
            "HWON",
            mk(
                presets::hwon(out_shape).unwrap(),
                presets::hwon(in_shape).unwrap(),
                presets::permuted(w_shape, &[2, 3, 1, 0]).unwrap(),
            ),
        ),
    ]
}

fn gmm_layouts(g: &Graph) -> Vec<(&'static str, LayoutPlan)> {
    let op = g.complex_ops()[0];
    let node = g.node(op);
    let (a, b, c) = (node.inputs[0], node.inputs[1], node.output);
    let shape = |t: TensorId| g.tensor(t).shape.clone();
    // KN keeps identity layouts for all three matrices.
    let kn = LayoutPlan::new(PropagationMode::Full);
    let mut nk = LayoutPlan::new(PropagationMode::Full);
    nk.set_layout(b, presets::transposed2d(shape(b)).unwrap());
    let mut nkn = LayoutPlan::new(PropagationMode::Full);
    // m = n = 16 tiling per the paper; fall back to the largest divisor
    // for dimensions 16 does not divide.
    let tile = |d: i64| alt_autotune::tuner::largest_divisor_at_most(d, 16);
    let (m, k, n) = (shape(c).dim(0), shape(a).dim(1), shape(c).dim(1));
    nkn.set_layout(c, presets::gmm_tiled(shape(c), tile(m), tile(n)).unwrap());
    nkn.set_layout(a, presets::gmm_tiled(shape(a), tile(m), tile(k)).unwrap());
    nkn.set_layout(b, presets::gmm_tiled(shape(b), tile(k), tile(n)).unwrap());
    vec![("KN", kn), ("NK", nk), ("NKn", nkn)]
}

fn run_family(
    name: &str,
    configs: &[(String, Graph)],
    layouts_of: impl Fn(&Graph) -> Vec<(&'static str, LayoutPlan)>,
    profile: MachineProfile,
    budget: u64,
    report: &mut BenchReport,
) {
    println!("\n## Fig. 1 {name} on {}", profile.name);
    let layout_names: Vec<&str> = layouts_of(&configs[0].1).iter().map(|(n, _)| *n).collect();
    let mut headers = vec!["config"];
    headers.extend(layout_names.iter().copied());
    headers.push("best");
    let widths = vec![22, 12, 12, 12, 8];
    let printer = TablePrinter::new(&headers, &widths);
    for (cname, g) in configs {
        let mut cells = vec![cname.clone()];
        let mut lats: HashMap<&str, f64> = HashMap::new();
        for (lname, plan) in layouts_of(g) {
            let lat = loop_tune(g, &plan, profile, budget, 11);
            lats.insert(lname, lat);
            cells.push(fmt_latency(lat));
        }
        let best = lats
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(n, _)| *n)
            .unwrap();
        cells.push(best.to_string());
        printer.row(&cells);
        report.push(serde_json::json!({
            "family": name,
            "platform": profile.name,
            "config": cname,
            "latencies": lats.iter().map(|(k, v)| (k.to_string(), v)).collect::<HashMap<_,_>>(),
        }));
    }
}

fn main() {
    let budget = scaled(120);
    println!("Fig. 1 reproduction: tuned latency per fixed layout (budget {budget} per layout)");
    let mut report = BenchReport::new("fig01");
    for profile in [intel_cpu(), nvidia_gpu()] {
        run_family(
            "C2D",
            &c2d_configs(),
            c2d_layouts,
            profile,
            budget,
            &mut report,
        );
        run_family(
            "GMM",
            &gmm_configs(),
            gmm_layouts,
            profile,
            budget,
            &mut report,
        );
    }
    // Summary: how much the best layout improves over the default.
    let mut c2d_gains = Vec::new();
    let mut gmm_gains = Vec::new();
    for rec in report.rows() {
        let lats = rec["latencies"].as_object().unwrap();
        let vals: Vec<f64> = lats.values().map(|v| v.as_f64().unwrap()).collect();
        let best = vals.iter().cloned().fold(f64::MAX, f64::min);
        let default = if rec["family"] == "C2D" {
            lats["NOHW"].as_f64().unwrap()
        } else {
            lats["KN"].as_f64().unwrap()
        };
        let gain = default / best - 1.0;
        if rec["family"] == "C2D" {
            c2d_gains.push(gain);
        } else {
            gmm_gains.push(gain);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    println!(
        "\nBest layout improves over the default by {:.1}% on average for C2D \
         and {:.1}% for GMM (paper: 55.9-87.2% and 20.6-24.8%).",
        avg(&c2d_gains),
        avg(&gmm_gains)
    );
    report.write();
}
