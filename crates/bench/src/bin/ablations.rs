//! Design-choice ablations (beyond the paper's figures): quantifies each
//! mechanism DESIGN.md calls out, on a representative conv block.
//!
//! * operator fusion on/off (the fusion-after-tiling that layout
//!   propagation preserves),
//! * layout propagation mode (Full / WithoutFusionAlign / None),
//! * seeded template points on/off,
//! * task deduplication effect proxy (unique-task count per model),
//! * cost-model ranking vs random top-k selection.

use alt_autotune::tuner::{base_schedule, TuneConfig};
use alt_autotune::{tune_graph, Measurer};
use alt_bench::{scaled, BenchReport, TablePrinter};
use alt_layout::{LayoutPlan, PropagationMode};
use alt_sim::intel_cpu;
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

fn block() -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 32, 58, 58]));
    let w = g.add_param("w", Shape::new([64, 32, 3, 3]));
    let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
    let b = g.add_param("b", Shape::new([64]));
    let ba = ops::bias_add(&mut g, c, b, 1);
    let _ = ops::relu(&mut g, ba);
    g
}

fn main() {
    let budget = scaled(200);
    println!("Design ablations (budget {budget})\n");
    let profile = intel_cpu();
    let mut report = BenchReport::new("ablations");

    // --- Fusion ablation: tune once, then strip the fusion flags from
    // the final schedule and re-measure (same layouts, same loop
    // schedules, only fusion differs). ---
    {
        let g = block();
        let cfg = TuneConfig {
            joint_budget: budget * 2 / 5,
            loop_budget: budget * 3 / 5,
            free_input_layouts: true,
            seed: 5,
            ..TuneConfig::default()
        };
        let r = tune_graph(&g, profile, cfg);
        let mut unfused = r.sched.clone();
        for node in g.nodes() {
            let mut s = unfused.get(node.id);
            s.fuse_into_producer = false;
            unfused.set(node.id, s);
        }
        let m = Measurer::new(&g, profile);
        let lf = m.measure_graph_free(&r.plan, &r.sched);
        let lu = m.measure_graph_free(&r.plan, &unfused);
        println!(
            "fusion:        fused {:.1} us vs unfused {:.1} us ({:.2}x)",
            lf * 1e6,
            lu * 1e6,
            lu / lf
        );
        report.push(
            serde_json::json!({"ablation": "fusion", "fused_us": lf * 1e6, "unfused_us": lu * 1e6}),
        );
    }

    // --- Propagation mode ablation (same budget, full tuner). ---
    {
        let g = block();
        let printer = TablePrinter::new(&["propagation", "latency us"], &[20, 12]);
        for (name, mode) in [
            ("Full", PropagationMode::Full),
            ("WithoutFusionAlign", PropagationMode::WithoutFusionAlign),
            ("None", PropagationMode::None),
        ] {
            let cfg = TuneConfig {
                joint_budget: budget * 2 / 5,
                loop_budget: budget * 3 / 5,
                mode,
                free_input_layouts: true,
                seed: 5,
                ..TuneConfig::default()
            };
            let r = tune_graph(&g, profile, cfg);
            printer.row(&[name.to_string(), format!("{:.1}", r.latency * 1e6)]);
            report.push(serde_json::json!({"ablation": "propagation", "mode": name, "latency_us": r.latency * 1e6}));
        }
    }

    // --- Seeded template points on/off. ---
    {
        let g = block();
        for seeds in [true, false] {
            let cfg = TuneConfig {
                joint_budget: budget * 2 / 5,
                loop_budget: budget * 3 / 5,
                seed_candidates: seeds,
                free_input_layouts: true,
                seed: 5,
                ..TuneConfig::default()
            };
            let r = tune_graph(&g, profile, cfg);
            println!("seeds={seeds:5}: {:.1} us", r.latency * 1e6);
            report.push(serde_json::json!({"ablation": "seeds", "enabled": seeds, "latency_us": r.latency * 1e6}));
        }
    }

    // --- Task deduplication: unique tuning tasks per model. ---
    {
        use std::collections::HashSet;
        for (name, g) in [
            ("R18", alt_models::resnet18(1)),
            ("MV2", alt_models::mobilenet_v2(1)),
            ("BB", alt_models::bert_base(1)),
            ("R3D", alt_models::resnet3d_18(1)),
        ] {
            let total = g.complex_ops().len();
            let mut sigs: HashSet<String> = HashSet::new();
            for op in g.complex_ops() {
                let node = g.node(op);
                let mut s = format!("{:?}|{}", node.tag, node.compute.name);
                for &i in &node.inputs {
                    s.push_str(&format!("|{}", g.tensor(i).shape));
                }
                sigs.insert(s);
            }
            println!(
                "task dedup {name}: {total} complex ops -> {} unique tasks ({:.1}x budget amplification)",
                sigs.len(),
                total as f64 / sigs.len() as f64
            );
            report.push(serde_json::json!({"ablation": "dedup", "model": name, "ops": total, "tasks": sigs.len()}));
        }
    }

    // --- Cost model: fraction of budget saved by top-k selection. ---
    {
        let g = block();
        let conv = g.complex_ops()[0];
        let plan = LayoutPlan::new(PropagationMode::Full);
        let mut m = Measurer::new(&g, profile);
        let mut sched = base_schedule(&g);
        // Random search measuring everything.
        let every =
            alt_bench::random_walk_loop_tune(&g, &plan, &mut sched, conv, &mut m, budget, 3);
        // Tuner with cost model at the same budget.
        let cfg = TuneConfig {
            joint_budget: 0,
            loop_budget: budget,
            fixed_layout: Some(alt_autotune::FixedLayout::Identity),
            free_input_layouts: true,
            seed: 3,
            ..TuneConfig::default()
        };
        let r = tune_graph(&g, profile, cfg);
        // Isolate the conv group latency from the end-to-end number by
        // measuring the tuned schedule directly.
        let tuned = Measurer::new(&g, profile).measure_graph_free(&r.plan, &r.sched);
        let base = Measurer::new(&g, profile).measure_graph_free(&plan, &sched);
        println!(
            "cost model:    measure-everything search reaches {:.1} us (conv group {:.1} us), \
             cost-model tuner reaches {:.1} us at equal budget",
            base * 1e6,
            every * 1e6,
            tuned * 1e6
        );
        report.push(serde_json::json!({"ablation": "cost_model", "random_us": base * 1e6, "tuner_us": tuned * 1e6}));
    }

    report.write();
}
