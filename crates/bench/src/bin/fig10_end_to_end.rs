//! Figure 10: end-to-end inference performance.
//!
//! Five networks (ResNet-18, MobileNet-V2, BERT-base, BERT-tiny,
//! ResNet3D-18) compiled by a hardware-specific vendor compiler
//! (OpenVINO / TensorRT / Torch), AutoTVM-like, Ansor-like, ALT, and the
//! two ablations ALT-OL (loop-only on channels-last) and ALT-WP
//! (propagation without fusion alignment), on the three platform
//! profiles. Latencies are printed in milliseconds above each normalized
//! bar, as in the paper.
//!
//! Environment: `ALT_BUDGET_SCALE` scales the per-network budget
//! (default 600; paper 20000). `ALT_FIG10_MODELS` restricts to a
//! comma-separated subset (e.g. `R18,MV2`).

use std::collections::HashMap;

use alt_autotune::tune_graph;
use alt_autotune::tuner::TuneConfig;
use alt_baselines::{alt_ol, alt_wp, ansor_like, autotvm_like, vendor_plan};
use alt_bench::{normalized_performance, scaled, BenchReport, TablePrinter};
use alt_layout::PropagationMode;
use alt_models::{bert_base, bert_tiny, mobilenet_v2, resnet18, resnet3d_18};
use alt_sim::{MachineKind, MachineProfile};
use alt_tensor::Graph;

const SYSTEMS: [&str; 6] = ["VendorC", "AutoTVM", "Ansor", "ALT", "ALT-OL", "ALT-WP"];

fn alt_full_e2e(
    graph: &Graph,
    profile: MachineProfile,
    budget: u64,
    seed: u64,
    journal: alt_journal::Journal,
    store: Option<std::sync::Arc<alt_store::Store>>,
    timing: alt_telemetry::Timing,
) -> alt_autotune::tuner::TuneResult {
    // Paper split: 8000/12000 of 20000 => 40%/60%.
    let joint = (budget as f64 * 0.4) as u64;
    let cfg = TuneConfig {
        joint_budget: joint,
        loop_budget: budget - joint,
        mode: PropagationMode::Full,
        free_input_layouts: false,
        seed,
        jobs: alt_bench::jobs(),
        journal,
        store,
        timing,
        progress: alt_bench::progress_from_env(),
        ..TuneConfig::default()
    };
    tune_graph(graph, profile, cfg)
}

fn workloads(profile: &MachineProfile) -> Vec<(String, Graph)> {
    let filter: Option<Vec<String>> = std::env::var("ALT_FIG10_MODELS")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_uppercase()).collect());
    let keep = |name: &str| {
        filter
            .as_ref()
            .map(|f| f.iter().any(|m| name.to_uppercase().starts_with(m)))
            .unwrap_or(true)
    };
    let mut out: Vec<(String, Graph)> = Vec::new();
    match profile.name {
        // Paper Fig. 10a: Intel CPU, batch 1 and 16 (R3D only b1).
        "intel-cpu" => {
            for b in [1i64, 16] {
                out.push((format!("R18-b{b}"), resnet18(b)));
                out.push((format!("MV2-b{b}"), mobilenet_v2(b)));
                out.push((format!("BB-b{b}"), bert_base(b)));
            }
            out.push(("R3D-b1".into(), resnet3d_18(1)));
        }
        // Fig. 10b: NVIDIA GPU, batch 1 and 16 including R3D-b16.
        "nvidia-gpu" => {
            for b in [1i64, 16] {
                out.push((format!("R18-b{b}"), resnet18(b)));
                out.push((format!("MV2-b{b}"), mobilenet_v2(b)));
                out.push((format!("BB-b{b}"), bert_base(b)));
                out.push((format!("R3D-b{b}"), resnet3d_18(b)));
            }
        }
        // Fig. 10c: ARM CPU, batch 1 only, BERT-tiny instead of base.
        _ => {
            out.push(("R18-b1".into(), resnet18(1)));
            out.push(("MV2-b1".into(), mobilenet_v2(1)));
            out.push(("BT-b1".into(), bert_tiny(1)));
            out.push(("R3D-b1".into(), resnet3d_18(1)));
        }
    }
    out.retain(|(n, _)| keep(n));
    out
}

fn main() {
    let budget = scaled(600);
    println!("Fig. 10 reproduction: end-to-end inference (budget {budget}/network)");
    let mut report = BenchReport::new("fig10");
    let store = alt_bench::store_from_env();
    // Winning-schedule cost attribution of the first network per
    // platform, embedded in the JSON envelope.
    let mut profiles = serde_json::Map::default();
    for profile in alt_bench::platforms() {
        let vendor_name = match (profile.kind, profile.name) {
            (MachineKind::Cpu, "intel-cpu") => "OpenVINO-like",
            (MachineKind::Gpu, _) => "TensorRT-like",
            _ => "Torch-like",
        };
        println!("\n## {} (VendorC = {vendor_name})", profile.name);
        let mut headers = vec!["network"];
        headers.extend(SYSTEMS);
        let printer = TablePrinter::new(&headers, &[10, 12, 12, 12, 12, 12, 12]);
        let mut per_case: Vec<HashMap<String, f64>> = Vec::new();
        let mut names = Vec::new();
        let mut alt_wall = 0.0f64;
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        let (mut store_hits, mut store_misses) = (0u64, 0u64);
        let mut warm_starts = 0u64;
        let mut jstats = alt_bench::JournalStats::new();
        // Per-platform wall-clock self-profile (ALT_TIMING): every ALT
        // tuning run on this platform folds into one phase tree.
        let timing = alt_bench::timing_from_env();
        for (name, g) in workloads(&profile) {
            let mut lats: HashMap<String, f64> = HashMap::new();
            // Vendor graph compiler: ARM Torch runs eager (no fusion).
            let fuse = profile.name != "arm-cpu";
            let (vp, vs) = vendor_plan(&g, &profile, fuse);
            let m = alt_autotune::Measurer::new(&g, profile);
            lats.insert("VendorC".into(), m.measure_graph_free(&vp, &vs));
            lats.insert(
                "AutoTVM".into(),
                autotvm_like(&g, profile, budget, 1).latency,
            );
            lats.insert("Ansor".into(), ansor_like(&g, profile, budget, 1).latency);
            let (journal, jsink) = alt_journal::Journal::memory();
            let t0 = std::time::Instant::now();
            let alt = alt_full_e2e(
                &g,
                profile,
                budget,
                1,
                journal,
                store.clone(),
                timing.clone(),
            );
            alt_wall += t0.elapsed().as_secs_f64();
            jstats.note_run(&jsink, budget);
            alt_bench::verify_winner(
                &mut report,
                &format!("{name} on {}", profile.name),
                &g,
                &alt.plan,
                &alt.sched,
            );
            cache_hits += alt.cache_hits;
            cache_misses += alt.cache_misses;
            store_hits += alt.store_hits;
            store_misses += alt.store_misses;
            warm_starts += u64::from(alt.warm_start);
            report.note_run(alt.measurements, alt.latency);
            if per_case.is_empty() {
                let program = alt_loopir::lower(&g, &alt.plan, &alt.sched);
                let breakdown = alt_sim::Simulator::new(profile).profile_program(&program);
                let prof = alt_profiler::Profile::new(breakdown, &profile);
                profiles.insert(
                    format!("{}/{name}", profile.name),
                    alt_profiler::summary_json(&prof),
                );
                // Native-executor wall clock + calibration for the first
                // network per platform (iteration-capped so the
                // interpreter side stays affordable).
                alt_bench::native_exec_report(
                    &mut report,
                    &alt_bench::NativeExecCase {
                        what: name.clone(),
                        graph: &g,
                        plan: &alt.plan,
                        sched: &alt.sched,
                        profile,
                        seed: 1,
                    },
                );
            }
            lats.insert("ALT".into(), alt.latency);
            lats.insert("ALT-OL".into(), alt_ol(&g, profile, budget, 1).latency);
            let joint = (budget as f64 * 0.4) as u64;
            lats.insert(
                "ALT-WP".into(),
                alt_wp(&g, profile, joint, budget - joint, 1).latency,
            );
            let mut row = vec![name.clone()];
            for sys in SYSTEMS {
                row.push(format!("{:.2}ms", lats[sys] * 1e3));
            }
            printer.row(&row);
            report.push(serde_json::json!({
                "platform": profile.name,
                "network": name,
                "latencies_ms": lats.iter().map(|(k, v)| (k.clone(), v * 1e3)).collect::<HashMap<_, _>>(),
            }));
            per_case.push(lats);
            names.push(name);
        }
        if per_case.is_empty() {
            println!("(no workloads selected on this platform)");
            continue;
        }
        printer.rule();
        let norm = normalized_performance(&per_case, &SYSTEMS);
        let mut row = vec!["norm.".to_string()];
        for sys in SYSTEMS {
            row.push(format!("{:.3}", norm[sys]));
        }
        printer.row(&row);
        let speedup = |a: &str, b: &str| {
            let ratios: Vec<f64> = per_case.iter().map(|c| c[b] / c[a]).collect();
            alt_bench::geomean(&ratios)
        };
        println!(
            "ALT speedup on {}: vs Ansor {:.2}x (paper ~1.4x), vs {vendor_name} {:.2}x, \
             vs ALT-OL {:.2}x, vs ALT-WP {:.2}x",
            profile.name,
            speedup("ALT", "Ansor"),
            speedup("ALT", "VendorC"),
            speedup("ALT", "ALT-OL"),
            speedup("ALT", "ALT-WP"),
        );
        let alt_lats: Vec<f64> = per_case.iter().map(|c| c["ALT"]).collect();
        report.note_metric(
            format!("{}/alt_geomean_latency_s", profile.name),
            alt_bench::geomean(&alt_lats),
        );
        report.note_metric(
            format!("{}/alt_vs_ansor_speedup", profile.name),
            speedup("ALT", "Ansor"),
        );
        // Informational (not regression-gated): tuning wall-clock at
        // ALT_JOBS workers and the memoized-simulation hit rate.
        let lookups = cache_hits + cache_misses;
        let hit_rate = if lookups > 0 {
            cache_hits as f64 / lookups as f64
        } else {
            0.0
        };
        println!(
            "ALT tuning wall-clock on {}: {alt_wall:.2} s at {} job(s); \
             sim-cache hit rate {:.1}% ({cache_hits}/{lookups})",
            profile.name,
            alt_bench::jobs(),
            hit_rate * 100.0
        );
        report.note_metric(format!("{}/tune_wall_s", profile.name), alt_wall);
        report.note_metric(format!("{}/cache_hit_rate", profile.name), hit_rate);
        // Durable-store effectiveness (only with ALT_STORE set): a cold
        // pass records ~0% hit rate; rerunning with the same store
        // warm-starts every network, and the cold-vs-warm tune_wall_s
        // pair is the store's headline saving.
        if store.is_some() {
            let n = workloads(&profile).len() as u64;
            let store_lookups = store_hits + store_misses;
            let store_rate = if store_lookups > 0 {
                store_hits as f64 / store_lookups as f64
            } else {
                0.0
            };
            println!(
                "ALT durable store on {}: {warm_starts}/{n} warm starts; \
                 measurement hit rate {:.1}% ({store_hits}/{store_lookups})",
                profile.name,
                store_rate * 100.0
            );
            report.note_metric(format!("{}/store_hit_rate", profile.name), store_rate);
            report.note_metric(
                format!("{}/store_warm_starts", profile.name),
                warm_starts as f64,
            );
        }
        alt_bench::finish_timing(
            &mut report,
            "fig10",
            profile.name,
            &timing,
            &[
                ("budget", serde_json::json!(budget)),
                ("networks", serde_json::json!(names.len() as u64)),
                ("tune_wall_s", serde_json::json!(alt_wall)),
            ],
        );
        jstats.finish(&mut report, "fig10", profile.name);
    }
    report.set_profile(serde_json::Value::Object(profiles));
    report.write();
}
