//! Figure 13: parameter sensitivity — template size vs budget.
//!
//! Compares three settings on four networks (batch 1) on the CPU and GPU
//! profiles:
//!
//! * two-level layout tiling templates at budget B,
//! * two-level templates at budget 1.5 B,
//! * one-level templates at budget B (the baseline setting).
//!
//! The paper's finding: at a fixed budget the *smaller* one-level space
//! wins (~15% over two-level); giving the larger space 1.5x budget closes
//! most of the gap (within ~6%), demonstrating space-size/budget
//! trade-off scalability.

use alt_autotune::tune_graph;
use alt_autotune::tuner::TuneConfig;
use alt_bench::{scaled, BenchReport, TablePrinter};
use alt_models::{bert_base, mobilenet_v2, resnet18, resnet3d_18};
use alt_sim::{intel_cpu, nvidia_gpu};

fn main() {
    let budget = scaled(400);
    let budget_big = budget * 3 / 2;
    println!(
        "Fig. 13 reproduction: one-level (B={budget}) vs two-level (B={budget}) \
         vs two-level (B={budget_big})\n"
    );
    let printer = TablePrinter::new(
        &[
            "network",
            "platform",
            "2L(B) ms",
            "2L(1.5B) ms",
            "1L(B) ms",
            "2L(B)/1L",
            "2L(1.5B)/1L",
        ],
        &[8, 10, 10, 12, 10, 9, 11],
    );
    let mut report = BenchReport::new("fig13");
    let mut ratios_same = Vec::new();
    let mut ratios_more = Vec::new();
    for profile in [intel_cpu(), nvidia_gpu()] {
        for (name, g) in [
            ("R18-b1", resnet18(1)),
            ("MV2-b1", mobilenet_v2(1)),
            ("BB-b1", bert_base(1)),
            ("R3D-b1", resnet3d_18(1)),
        ] {
            let run = |levels: u8, b: u64| {
                let joint = (b as f64 * 0.4) as u64;
                let cfg = TuneConfig {
                    joint_budget: joint,
                    loop_budget: b - joint,
                    levels,
                    seed: 13,
                    ..TuneConfig::default()
                };
                tune_graph(&g, profile, cfg).latency
            };
            let two_same = run(2, budget);
            let two_more = run(2, budget_big);
            let one = run(1, budget);
            printer.row(&[
                name.to_string(),
                profile.name.to_string(),
                format!("{:.2}", two_same * 1e3),
                format!("{:.2}", two_more * 1e3),
                format!("{:.2}", one * 1e3),
                format!("{:.3}", one / two_same),
                format!("{:.3}", one / two_more),
            ]);
            ratios_same.push(one / two_same);
            ratios_more.push(one / two_more);
            report.push(serde_json::json!({
                "network": name,
                "platform": profile.name,
                "two_level_same_budget_ms": two_same * 1e3,
                "two_level_more_budget_ms": two_more * 1e3,
                "one_level_ms": one * 1e3,
            }));
        }
    }
    println!(
        "\nSpeedup of each setting relative to one-level(B): two-level(B) {:.3}, \
         two-level(1.5B) {:.3} (paper: ~0.87 and ~1.06 -> one-level wins at equal \
         budget; extra budget recovers the larger space).",
        alt_bench::geomean(&ratios_same),
        alt_bench::geomean(&ratios_more),
    );
    report.write();
}
