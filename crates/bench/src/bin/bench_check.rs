//! Bench regression gate.
//!
//! Compares the newest entry of every `BENCH_<name>.json` trajectory in a
//! candidate directory against the newest entry in a baseline directory
//! and fails (exit 1) when the gated metrics regress by more than the
//! tolerance in geometric mean.
//!
//! Metric direction is by naming convention (see
//! `alt_bench::BenchReport::note_metric`): names containing `latency`
//! are lower-is-better, names containing `speedup` are higher-is-better,
//! and anything else is reported but never gated. Entries recorded at a
//! different `budget_scale` than the baseline are skipped with a warning
//! — comparing runs with different budgets would gate noise, not code.
//!
//! ```text
//! bench_check --baseline results/bench_baseline --candidate bench_traj
//! bench_check --candidate bench_traj --tolerance 0.10 --report-only
//! ```

use alt_bench::geomean;
use serde_json::Value;

struct Args {
    baseline: String,
    candidate: String,
    tolerance: f64,
    report_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: "results/bench_baseline".into(),
        candidate: "bench_traj".into(),
        tolerance: 0.05,
        report_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--baseline" => args.baseline = value("--baseline")?,
            "--candidate" => args.candidate = value("--candidate")?,
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--report-only" => args.report_only = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_check [--baseline DIR] [--candidate DIR]\n\
                     \x20                  [--tolerance FRAC] [--report-only]\n\
                     \n\
                     Compares the newest BENCH_<name>.json trajectory entries in\n\
                     --candidate (default bench_traj) against --baseline (default\n\
                     results/bench_baseline); exits 1 when lower-is-better metrics\n\
                     regress by more than FRAC (default 0.05) in geometric mean.\n\
                     --report-only prints the comparison but always exits 0."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// The newest trajectory entry of one `BENCH_<name>.json`, flattened to
/// (budget_scale, metric name -> value).
fn latest_entry(doc: &Value) -> Option<(f64, Vec<(String, f64)>)> {
    let entry = doc.get("entries")?.as_array()?.last()?;
    let scale = entry.get("budget_scale")?.as_f64()?;
    let metrics = entry
        .get("metrics")?
        .as_object()?
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
        .collect();
    Some((scale, metrics))
}

/// Regression ratio for one metric: > 1 means the candidate is worse.
/// `None` for ungated (informational) metrics.
fn regression_ratio(name: &str, baseline: f64, candidate: f64) -> Option<f64> {
    if !(baseline > 0.0 && candidate > 0.0) {
        return None;
    }
    if name.contains("latency") {
        Some(candidate / baseline)
    } else if name.contains("speedup") {
        Some(baseline / candidate)
    } else {
        None
    }
}

fn load(path: &std::path::Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {e:?}", path.display()))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let baseline_dir = std::path::Path::new(&args.baseline);
    let candidate_dir = std::path::Path::new(&args.candidate);
    let mut names: Vec<String> = match std::fs::read_dir(candidate_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("error: --candidate {}: {e}", candidate_dir.display());
            std::process::exit(2);
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!(
            "error: no BENCH_*.json trajectories in {}",
            candidate_dir.display()
        );
        std::process::exit(2);
    }

    let mut ratios: Vec<f64> = Vec::new();
    let mut per_bench: Vec<(String, Vec<f64>)> = Vec::new();
    let mut compared = 0usize;
    for name in &names {
        let cand_path = candidate_dir.join(name);
        let base_path = baseline_dir.join(name);
        if !base_path.exists() {
            println!("{name}: no baseline (new bench, skipped)");
            continue;
        }
        let (cand, base) = match (load(&cand_path), load(&base_path)) {
            (Ok(c), Ok(b)) => (c, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let (Some((cs, cm)), Some((bs, bm))) = (latest_entry(&cand), latest_entry(&base)) else {
            eprintln!("error: {name}: trajectory has no complete entries");
            std::process::exit(2);
        };
        if cs != bs {
            println!(
                "{name}: budget_scale differs (baseline {bs}, candidate {cs}); skipped — \
                 re-run at the baseline's scale to gate"
            );
            continue;
        }
        println!("{name} (budget_scale {cs}):");
        let mut bench_ratios: Vec<f64> = Vec::new();
        for (metric, cv) in &cm {
            let Some(bv) = bm.iter().find(|(k, _)| k == metric).map(|(_, v)| *v) else {
                println!("    {metric}: {cv:.4e} (no baseline value)");
                continue;
            };
            match regression_ratio(metric, bv, *cv) {
                Some(r) => {
                    ratios.push(r);
                    bench_ratios.push(r);
                    compared += 1;
                    let verdict = if r > 1.0 + args.tolerance {
                        "REGRESSED"
                    } else if r < 1.0 - args.tolerance {
                        "improved"
                    } else {
                        "ok"
                    };
                    println!("    {metric}: {bv:.4e} -> {cv:.4e}  (x{r:.3} {verdict})",);
                }
                None => println!("    {metric}: {bv:.4e} -> {cv:.4e}  (informational)"),
            }
        }
        if !bench_ratios.is_empty() {
            per_bench.push((name.clone(), bench_ratios));
        }
    }

    if compared == 0 {
        println!("no gated metrics compared; nothing to fail on");
        return;
    }
    // Gate each bench's geomean as well as the overall one, so a real
    // regression in one bench cannot hide behind many flat metrics
    // elsewhere.
    let mut regressed = false;
    for (name, rs) in &per_bench {
        let g = geomean(rs);
        if g > 1.0 + args.tolerance {
            println!("{name}: geomean regression x{g:.4} exceeds tolerance");
            regressed = true;
        }
    }
    let gm = geomean(&ratios);
    regressed |= gm > 1.0 + args.tolerance;
    println!(
        "geomean regression ratio over {compared} metric(s): x{gm:.4} \
         (tolerance {:.0}%) -> {}",
        args.tolerance * 100.0,
        if regressed { "FAIL" } else { "PASS" }
    );
    if regressed && !args.report_only {
        std::process::exit(1);
    }
    if regressed {
        println!("(--report-only: not failing)");
    }
}
