//! Figure 11: layout-search efficiency of Random vs PPO (with and
//! without pretraining).
//!
//! The workload is the first C2D of ResNet-18 (N=1, I=3, H=W=230, O=64,
//! KH=KW=7, stride 2) on the Intel CPU profile. We run the joint tuner
//! with each search method and plot best-latency-so-far against the
//! measurement budget.

use alt_autotune::tuner::{LayoutSearch, TuneConfig};
use alt_autotune::{pretrain_ppo, tune_graph};
use alt_bench::{scaled, BenchReport, TablePrinter};
use alt_sim::intel_cpu;
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

fn workload() -> Graph {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 3, 230, 230]));
    let w = g.add_param("w", Shape::new([64, 3, 7, 7]));
    let _ = ops::conv2d(&mut g, x, w, ConvCfg::strided(2));
    g
}

/// Best-so-far curve sampled at fixed budget points.
fn curve(history: &[(u64, f64)], points: &[u64]) -> Vec<f64> {
    let mut out = Vec::new();
    let mut best = f64::INFINITY;
    let mut i = 0;
    for &p in points {
        while i < history.len() && history[i].0 <= p {
            best = best.min(history[i].1);
            i += 1;
        }
        out.push(best);
    }
    out
}

fn main() {
    let budget = scaled(300);
    println!("Fig. 11 reproduction: layout tuning efficiency (budget {budget})");
    let g = workload();

    let base = TuneConfig {
        joint_budget: budget,
        loop_budget: 0,
        free_input_layouts: true,
        seed: 17,
        // Compare raw explorers: no seeded template points.
        seed_candidates: false,
        ..TuneConfig::default()
    };

    println!("pretraining PPO on the C2D/GMM workload set...");
    let weights = pretrain_ppo(intel_cpu(), 48, 99);

    let runs: Vec<(&str, TuneConfig)> = vec![
        (
            "Random",
            TuneConfig {
                layout_search: LayoutSearch::Random,
                ..base.clone()
            },
        ),
        (
            "PPO-woPret",
            TuneConfig {
                layout_search: LayoutSearch::Ppo,
                ..base.clone()
            },
        ),
        (
            "PPO-Pret",
            TuneConfig {
                layout_search: LayoutSearch::Ppo,
                pretrained: Some(weights),
                ..base.clone()
            },
        ),
    ];

    let mut report = BenchReport::new("fig11");
    let points: Vec<u64> = (1..=10).map(|i| i * budget / 10).collect();
    let mut curves = Vec::new();
    for (name, cfg) in &runs {
        let r = tune_graph(&g, intel_cpu(), cfg.clone());
        report.note_budget(cfg.joint_budget, cfg.loop_budget);
        report.note_run(r.measurements, r.latency);
        let c = curve(&r.history, &points);
        println!(
            "{name:12}: final best {:.1} us after {} measurements",
            c.last().unwrap() * 1e6,
            r.measurements
        );
        curves.push((name.to_string(), c));
    }

    println!("\nbest-so-far latency (us) vs budget:");
    let mut headers = vec!["budget"];
    for (n, _) in &curves {
        headers.push(n);
    }
    let printer = TablePrinter::new(&headers, &[8, 12, 12, 12]);
    for (i, p) in points.iter().enumerate() {
        let mut row = vec![p.to_string()];
        for (_, c) in &curves {
            row.push(format!("{:.1}", c[i] * 1e6));
        }
        printer.row(&row);
    }

    let fin = |name: &str| {
        curves
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c.last().unwrap())
            .unwrap()
    };
    let (r, wo, pre) = (fin("Random"), fin("PPO-woPret"), fin("PPO-Pret"));
    println!(
        "\nPPO-Pret vs Random: {:.2}x better final latency (paper: 1.2x with 2x less budget); \
         PPO-Pret vs PPO-woPret: {:.2}x",
        r / pre,
        wo / pre
    );
    report.push(serde_json::json!({
        "points": points,
        "curves": curves.iter().map(|(n, c)| (n.clone(), c.clone())).collect::<std::collections::HashMap<_, _>>(),
    }));
    report.write();
}
