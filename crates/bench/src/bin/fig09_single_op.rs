//! Figure 9: single-operator normalized performance.
//!
//! Nine layout-sensitive operator families (C2D, GRP, DIL, DEP, C3D, C1D,
//! GMM, T2D, T3D), several random configurations each, tuned by five
//! systems — a vendor library, AutoTVM-like, FlexTensor-like, Ansor-like
//! and ALT — on all three platform profiles. The result is normalized by
//! the geometric mean of speedups over the worst latency per test case,
//! as in the paper.
//!
//! Environment: `ALT_BUDGET_SCALE` scales the per-case budget (default
//! 120, paper 1000); `ALT_FIG9_CONFIGS` sets configurations per operator
//! (default 3, paper 10). Pass `--report-ot` to also print the §7.3.5
//! observation (the tuned `ot` relative to the platform vector lanes).

use std::collections::HashMap;

use alt_autotune::tune_graph;
use alt_autotune::tuner::{TuneConfig, TuneResult};
use alt_baselines::{ansor_like, autotvm_like, flextensor_like, vendor_plan};
use alt_bench::{normalized_performance, scaled, single_op_cases, BenchReport, TablePrinter};
use alt_layout::LayoutPrim;
use alt_sim::MachineProfile;
use alt_tensor::Graph;

const SYSTEMS: [&str; 5] = ["Vendor", "AutoTVM", "FlexTensor", "Ansor", "ALT"];
const OPS: [&str; 9] = [
    "C2D", "GRP", "DIL", "DEP", "C3D", "C1D", "GMM", "T2D", "T3D",
];

fn alt_tune(
    graph: &Graph,
    profile: MachineProfile,
    budget: u64,
    seed: u64,
    journal: alt_journal::Journal,
    store: Option<std::sync::Arc<alt_store::Store>>,
    timing: alt_telemetry::Timing,
) -> TuneResult {
    // Paper split: 300/700 of 1000 => 30%/70%.
    let joint = (budget as f64 * 0.3) as u64;
    let cfg = TuneConfig {
        joint_budget: joint,
        loop_budget: budget - joint,
        free_input_layouts: true,
        seed,
        jobs: alt_bench::jobs(),
        journal,
        store,
        timing,
        progress: alt_bench::progress_from_env(),
        ..TuneConfig::default()
    };
    tune_graph(graph, profile, cfg)
}

/// Reports the tuned `ot` (innermost channel tile) of ALT's layouts.
fn observed_ot(graph: &Graph, result: &TuneResult) -> Option<i64> {
    let op = graph.complex_ops().first().copied()?;
    let out = graph.node(op).output;
    let layout = result.plan.layout_of(graph, out);
    // The template puts `ot` last: find the final Split's last factor.
    layout.prims().iter().rev().find_map(|p| match p {
        LayoutPrim::Split { factors, .. } => factors.last().copied(),
        _ => None,
    })
}

fn main() {
    let report_ot = std::env::args().any(|a| a == "--report-ot");
    let budget = scaled(120);
    let n_cfg: usize = std::env::var("ALT_FIG9_CONFIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    println!(
        "Fig. 9 reproduction: single-operator normalized performance \
         (budget {budget}/case, {n_cfg} configs/op)"
    );
    let cases = single_op_cases(n_cfg, 2023);
    let mut report = BenchReport::new("fig09");
    let store = alt_bench::store_from_env();
    let mut ot_observations: Vec<(String, i64, u32)> = Vec::new();

    for profile in alt_bench::platforms() {
        println!("\n## {} ", profile.name);
        // per op family -> list of per-case latencies by system.
        let mut by_op: HashMap<&str, Vec<HashMap<String, f64>>> = HashMap::new();
        let mut alt_lats: Vec<f64> = Vec::new();
        let mut alt_wall = 0.0f64;
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        let (mut store_hits, mut store_misses) = (0u64, 0u64);
        let mut warm_starts = 0u64;
        let mut jstats = alt_bench::JournalStats::new();
        // Best candidate for the native-executor wall-clock row: the
        // tuned winner with the most statement iterations that still
        // fits the interpreter-side cap (label, iters, plan, sched, case
        // index).
        let mut native_case: Option<(
            String,
            u64,
            alt_layout::LayoutPlan,
            alt_loopir::GraphSchedule,
            usize,
        )> = None;
        let native_cap = alt_bench::native_bench_cap();
        // Per-platform wall-clock self-profile (ALT_TIMING): every ALT
        // tuning run on this platform folds into one phase tree.
        let timing = alt_bench::timing_from_env();
        for (case_idx, case) in cases.iter().enumerate() {
            let g = &case.graph;
            let mut lats: HashMap<String, f64> = HashMap::new();
            // Vendor library (no search).
            let (vp, vs) = vendor_plan(g, &profile, true);
            let m = alt_autotune::Measurer::new(g, profile);
            lats.insert("Vendor".into(), m.measure_graph_free(&vp, &vs));
            // Auto-tuners.
            lats.insert(
                "AutoTVM".into(),
                autotvm_like(g, profile, budget, 1).latency,
            );
            lats.insert(
                "FlexTensor".into(),
                flextensor_like(g, profile, budget, 1).latency,
            );
            lats.insert("Ansor".into(), ansor_like(g, profile, budget, 1).latency);
            let (journal, jsink) = alt_journal::Journal::memory();
            let t0 = std::time::Instant::now();
            let alt = alt_tune(
                g,
                profile,
                budget,
                1,
                journal,
                store.clone(),
                timing.clone(),
            );
            alt_wall += t0.elapsed().as_secs_f64();
            jstats.note_run(&jsink, budget);
            let program = alt_bench::verify_winner(
                &mut report,
                &format!("{} {} on {}", case.op, case.config, profile.name),
                g,
                &alt.plan,
                &alt.sched,
            );
            let iters = program.total_stmt_iterations();
            let improves = match &native_case {
                None => true,
                Some((_, best, ..)) => {
                    if *best > native_cap {
                        iters < *best
                    } else {
                        iters <= native_cap && iters > *best
                    }
                }
            };
            if improves {
                native_case = Some((
                    format!("{} {}", case.op, case.config),
                    iters,
                    alt.plan.clone(),
                    alt.sched.clone(),
                    case_idx,
                ));
            }
            cache_hits += alt.cache_hits;
            cache_misses += alt.cache_misses;
            store_hits += alt.store_hits;
            store_misses += alt.store_misses;
            warm_starts += u64::from(alt.warm_start);
            report.note_run(alt.measurements, alt.latency);
            alt_lats.push(alt.latency);
            lats.insert("ALT".into(), alt.latency);
            if report_ot {
                if let Some(ot) = observed_ot(g, &alt) {
                    ot_observations.push((case.op.to_string(), ot, profile.vector_lanes));
                }
            }
            report.push(serde_json::json!({
                "platform": profile.name,
                "op": case.op,
                "config": case.config,
                "latencies": lats,
            }));
            by_op.entry(case.op).or_default().push(lats);
        }

        let mut headers = vec!["op"];
        headers.extend(SYSTEMS);
        let printer = TablePrinter::new(&headers, &[6, 10, 10, 10, 10, 10]);
        let mut alt_vs_ansor = Vec::new();
        for op in OPS {
            let Some(case_lats) = by_op.get(op) else {
                continue;
            };
            let norm = normalized_performance(case_lats, &SYSTEMS);
            let mut row = vec![op.to_string()];
            for sys in SYSTEMS {
                row.push(format!("{:.3}", norm[sys]));
            }
            printer.row(&row);
            if norm["Ansor"] > 0.0 {
                alt_vs_ansor.push(norm["ALT"] / norm["Ansor"]);
            }
        }
        let vs_ansor = alt_bench::geomean(&alt_vs_ansor);
        println!(
            "ALT vs Ansor geomean speedup on {}: {vs_ansor:.2}x (paper: 1.4-1.6x)",
            profile.name
        );
        report.note_metric(format!("{}/alt_vs_ansor_speedup", profile.name), vs_ansor);
        report.note_metric(
            format!("{}/alt_geomean_latency_s", profile.name),
            alt_bench::geomean(&alt_lats),
        );
        // Informational (not regression-gated): tuning wall-clock at
        // ALT_JOBS workers and the memoized-simulation hit rate.
        let lookups = cache_hits + cache_misses;
        let hit_rate = if lookups > 0 {
            cache_hits as f64 / lookups as f64
        } else {
            0.0
        };
        println!(
            "ALT tuning wall-clock on {}: {alt_wall:.2} s at {} job(s); \
             sim-cache hit rate {:.1}% ({cache_hits}/{lookups})",
            profile.name,
            alt_bench::jobs(),
            hit_rate * 100.0
        );
        report.note_metric(format!("{}/tune_wall_s", profile.name), alt_wall);
        report.note_metric(format!("{}/cache_hit_rate", profile.name), hit_rate);
        // Native-executor wall clock for the selected tuned winner, with
        // the per-op calibration table against the analytic model.
        if let Some((what, _, plan, sched, case_idx)) = &native_case {
            alt_bench::native_exec_report(
                &mut report,
                &alt_bench::NativeExecCase {
                    what: what.clone(),
                    graph: &cases[*case_idx].graph,
                    plan,
                    sched,
                    profile,
                    seed: 1,
                },
            );
        }
        // Durable-store effectiveness (only with ALT_STORE set): rerun
        // with the same store to warm-start every case and compare the
        // cold-vs-warm tune_wall_s pair.
        if store.is_some() {
            let store_lookups = store_hits + store_misses;
            let store_rate = if store_lookups > 0 {
                store_hits as f64 / store_lookups as f64
            } else {
                0.0
            };
            println!(
                "ALT durable store on {}: {warm_starts}/{} warm starts; \
                 measurement hit rate {:.1}% ({store_hits}/{store_lookups})",
                profile.name,
                cases.len(),
                store_rate * 100.0
            );
            report.note_metric(format!("{}/store_hit_rate", profile.name), store_rate);
            report.note_metric(
                format!("{}/store_warm_starts", profile.name),
                warm_starts as f64,
            );
        }
        alt_bench::finish_timing(
            &mut report,
            "fig09",
            profile.name,
            &timing,
            &[
                ("budget", serde_json::json!(budget)),
                ("cases", serde_json::json!(cases.len() as u64)),
                ("tune_wall_s", serde_json::json!(alt_wall)),
            ],
        );
        jstats.finish(&mut report, "fig09", profile.name);
    }

    if report_ot && !ot_observations.is_empty() {
        println!("\n§7.3.5: tuned ot vs platform vector lanes");
        let mut counts: HashMap<(i64, u32), usize> = HashMap::new();
        for (_, ot, lanes) in &ot_observations {
            *counts.entry((*ot, *lanes)).or_default() += 1;
        }
        let mut rows: Vec<_> = counts.into_iter().collect();
        rows.sort_by_key(|((ot, lanes), _)| (*lanes, *ot));
        for ((ot, lanes), n) in rows {
            println!(
                "  ot = {ot:4} (lanes {lanes:2}, ratio {:.1}): {n} cases",
                ot as f64 / lanes as f64
            );
        }
    }
    report.write();
}
