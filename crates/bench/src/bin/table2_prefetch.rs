//! Table 2: profiled L1 data cache misses — layout tiling vs loop tiling
//! under hardware prefetching.
//!
//! Two functions load the same `512 x W` f32 block with NEON-width
//! accesses on a Cortex-A76-like L1 (64 B lines, ~4 lines fetched per
//! miss event):
//!
//! * **first function (layout tiling)** — the block's elements are stored
//!   contiguously, so the prefetcher's next-lines fetches are all useful;
//! * **second function (loop tiling)** — the block is a `512 x W` window
//!   of a larger row-major matrix, so each row sits far from the next and
//!   prefetched lines are wasted.
//!
//! The prediction column reproduces the paper's calculation
//! `rows*W / (16 * 4)` (16 floats per line, 4 lines per miss event).

use alt_bench::{BenchReport, TablePrinter};
use alt_sim::CacheSim;

const ROWS: u64 = 512;
const LINE: u64 = 64;
const PREFETCH: u32 = 4;
/// Row stride (floats) of the large matrix the loop-tiling case reads.
const BIG_ROW: u64 = 1024;

fn run_layout_tiling(w: u64) -> u64 {
    // Contiguous storage: element (r, c) at linear offset r*w + c.
    let mut sim = CacheSim::with_geometry(64 * 1024, LINE, 4, PREFETCH);
    for r in 0..ROWS {
        for c in 0..w {
            sim.access((r * w + c) * 4);
        }
    }
    sim.stats().misses
}

fn run_loop_tiling(w: u64) -> u64 {
    // Row-major window of a larger matrix: element (r, c) at r*BIG_ROW + c.
    let mut sim = CacheSim::with_geometry(64 * 1024, LINE, 4, PREFETCH);
    for r in 0..ROWS {
        for c in 0..w {
            sim.access((r * BIG_ROW + c) * 4);
        }
    }
    sim.stats().misses
}

fn main() {
    println!("Table 2 reproduction: L1 miss events, layout tiling vs loop tiling");
    println!("(L1: 64 KiB, 64 B lines, prefetch {PREFETCH} lines per miss event)\n");
    let printer = TablePrinter::new(
        &["tile size", "#L1-mis (1st F.)", "pred.", "#L1-mis (2nd F.)"],
        &[12, 18, 8, 18],
    );
    let mut report = BenchReport::new("table2");
    for w in [4u64, 16, 64, 256] {
        let layout = run_layout_tiling(w);
        let pred = ROWS * w / (16 * PREFETCH as u64);
        let loop_ = run_loop_tiling(w);
        printer.row(&[
            format!("512 x {w}"),
            layout.to_string(),
            pred.to_string(),
            loop_.to_string(),
        ]);
        report.push(serde_json::json!({
            "tile": format!("512x{w}"),
            "layout_tiling_misses": layout,
            "predicted": pred,
            "loop_tiling_misses": loop_,
        }));
        assert!(
            layout <= loop_,
            "layout tiling must not miss more than loop tiling"
        );
    }
    println!(
        "\nPaper reference (Cortex-A76): 32/208, 96/262, 501/785, 2037/2952 — \
         layout tiling consistently triggers ~4x fewer miss events because the \
         prefetched neighbour lines are useful."
    );
    report.write();
}
