//! Shared harness utilities for the per-figure/table benchmark binaries.
//!
//! Every binary prints the same rows/series as the corresponding paper
//! figure or table and also writes a JSON record next to the text output
//! when `ALT_BENCH_JSON` is set to a directory.
//!
//! Budgets default to scaled-down values so the full suite runs in
//! minutes on a laptop; set `ALT_BUDGET_SCALE` (e.g. `5` or `0.5`) to
//! re-scale all budgets toward (or beyond) the paper's settings.

use std::collections::HashMap;

use alt_sim::MachineProfile;
use alt_telemetry::RunSummaryRecord;
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lowers a tuning winner and runs the full static verifier over it,
/// aborting the benchmark on any diagnostic. The figure harnesses call
/// this on every winning (plan, schedule) pair so a regression in
/// transformation legality or lowering can never ship a number. The
/// set-engine counters of every run accumulate into the report's
/// `verify.*` metrics (and thus the bench JSON envelope).
///
/// # Panics
///
/// Panics with the full diagnostic list when verification fails.
pub fn verify_winner(
    report: &mut BenchReport,
    what: &str,
    graph: &Graph,
    plan: &alt_layout::LayoutPlan,
    sched: &alt_loopir::GraphSchedule,
) -> alt_loopir::Program {
    let program = alt_loopir::lower(graph, plan, sched);
    let (diags, stats) = alt_verify::verify_program_with_stats(graph, plan, &program);
    report.add_metric("verify.set_queries", stats.set_queries as f64);
    report.add_metric("verify.set_emptiness_us", stats.set_emptiness_us as f64);
    report.add_metric(
        "verify.conservative_recovered",
        stats.conservative_recovered as f64,
    );
    assert!(
        diags.is_empty(),
        "static verification failed for {what}:\n{}",
        diags
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    program
}

/// A tuned winner to execute natively for wall-clock reporting.
pub struct NativeExecCase<'a> {
    /// Human-readable subject label (operator/model name).
    pub what: String,
    pub graph: &'a Graph,
    pub plan: &'a alt_layout::LayoutPlan,
    pub sched: &'a alt_loopir::GraphSchedule,
    pub profile: MachineProfile,
    /// Seed for the random input bindings.
    pub seed: u64,
}

/// Statement-iteration cap for native-vs-interpreter wall-clock rows
/// (`ALT_NATIVE_BENCH_CAP`); keeps the interpreter side of the
/// comparison affordable on big models.
pub fn native_bench_cap() -> u64 {
    std::env::var("ALT_NATIVE_BENCH_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000_000)
}

/// Runs a tuned winner through both executors — the reference TIR
/// interpreter and the compiled native kernel — on the same random
/// bindings, records wall-clock metrics plus the per-op calibration
/// table (native measured vs analytic model prediction) in the report,
/// and returns the native-over-interpreter wall-clock ratio.
///
/// Metric names deliberately avoid the regression-gated "latency" and
/// "speedup" substrings: wall clock on shared CI hardware is too noisy
/// to gate at 5%.
pub fn native_exec_report(report: &mut BenchReport, case: &NativeExecCase) -> f64 {
    let program =
        alt_loopir::lower(case.graph, case.plan, case.sched).truncated(native_bench_cap());
    let bindings = alt_tensor::exec::random_bindings(case.graph, case.seed);
    let t0 = std::time::Instant::now();
    let _ = alt_loopir::run_program(&program, case.graph, case.plan, &bindings);
    let interp_us = t0.elapsed().as_secs_f64() * 1e6;
    let kernel = alt_codegen::compile(&program, &case.profile);
    let threads = alt_codegen::default_threads();
    let (_, stats) = kernel.run(&program, case.graph, case.plan, &bindings, threads);
    let breakdown = alt_sim::Simulator::new(case.profile).profile_program(&program);
    let table = alt_sim::calibrate(&breakdown, &stats.group_us);
    let ratio = interp_us / stats.total_us.max(1e-9);
    println!(
        "native exec [{}] on {}: {:.0} us native vs {:.0} us interp ({ratio:.1}x, \
         {} threads); calibration ratio vs model {:.2}",
        case.what, case.profile.name, stats.total_us, interp_us, threads, table.ratio
    );
    report.note_metric(
        format!("{}/native_exec_us", case.profile.name),
        stats.total_us,
    );
    report.note_metric(format!("{}/interp_exec_us", case.profile.name), interp_us);
    report.note_metric(format!("{}/native_vs_interp_x", case.profile.name), ratio);
    report.push(serde_json::json!({
        "type": "native_calibration",
        "platform": case.profile.name,
        "subject": case.what,
        "stmt_iterations": program.total_stmt_iterations(),
        "threads": threads,
        "native_us": stats.total_us,
        "interp_us": interp_us,
        "native_vs_interp_x": ratio,
        "calibration": table.to_json(),
    }));
    ratio
}

/// Random-walk loop tuning of a single operator under a fixed layout
/// plan: alternates neighbourhood walks around the incumbent with random
/// restarts, measuring every candidate. Leaves `sched` holding the best
/// schedule found and returns its latency.
///
/// This is the shared "loop-only tuning" primitive used by the Fig. 1,
/// Fig. 12 and Table 3 harnesses (simpler and more transparent than the
/// cost-model tuner, which those studies are not about).
pub fn random_walk_loop_tune(
    graph: &Graph,
    plan: &alt_layout::LayoutPlan,
    sched: &mut alt_loopir::GraphSchedule,
    op: alt_tensor::OpId,
    measurer: &mut alt_autotune::Measurer,
    budget: u64,
    seed: u64,
) -> f64 {
    use alt_autotune::space::{build_loop_space, decode_loop_point};
    let space = build_loop_space(graph, plan, op);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = f64::INFINITY;
    let mut best_p: Option<Vec<usize>> = None;
    for i in 0..budget {
        let p = match (&best_p, i % 2) {
            (Some(bp), 0) => space.neighbor(bp, &mut rng),
            _ => space.random_point(&mut rng),
        };
        let s = decode_loop_point(graph, plan, op, &space, &p);
        let saved = sched.get(op);
        sched.set(op, s);
        let Ok(lat) = measurer.measure_op(plan, sched, op) else {
            sched.set(op, saved);
            continue;
        };
        if lat < best {
            best = lat;
            best_p = Some(p);
        } else {
            sched.set(op, saved);
        }
    }
    best
}

/// Reads the global budget scale from `ALT_BUDGET_SCALE` (default 1.0).
pub fn budget_scale() -> f64 {
    std::env::var("ALT_BUDGET_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a default budget by [`budget_scale`].
pub fn scaled(budget: u64) -> u64 {
    ((budget as f64) * budget_scale()).round().max(1.0) as u64
}

/// Reads the measurement worker-thread count from `ALT_JOBS` (default 1).
/// Any value yields bit-identical tuning results — workers only prewarm
/// the memoized simulation cache — so this trades wall-clock only.
pub fn jobs() -> usize {
    std::env::var("ALT_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or(1)
}

/// Opens the durable tuning store named by `ALT_STORE`, if any.
/// An unopenable store (foreign file, held writer lock, incompatible
/// version) degrades to a warning: benchmarks never fail over their
/// warm tier. Rerunning a figure with the same `ALT_STORE` warm-starts
/// every already-tuned task, which is how the cold-vs-warm wall-clock
/// comparison in the store-smoke CI job is produced.
pub fn store_from_env() -> Option<std::sync::Arc<alt_store::Store>> {
    let path = std::env::var("ALT_STORE").ok().filter(|s| !s.is_empty())?;
    match alt_store::Store::open(std::path::Path::new(&path)) {
        Ok(s) => Some(std::sync::Arc::new(s)),
        Err(e) => {
            eprintln!("warning: {e}; continuing without a tuning store");
            None
        }
    }
}

/// Reads the wall-clock self-profiling switch from `ALT_TIMING`
/// (default off). Each call returns a *fresh* handle, so the figure
/// harnesses take one per platform and get per-platform phase
/// attribution. Timing is observation-only: any setting yields
/// bit-identical tuning results.
pub fn timing_from_env() -> alt_telemetry::Timing {
    match std::env::var("ALT_TIMING") {
        Ok(v) if !v.is_empty() && v != "0" => alt_telemetry::Timing::enabled(),
        _ => alt_telemetry::Timing::disabled(),
    }
}

/// Reads the live stderr progress-heartbeat switch from `ALT_PROGRESS`
/// (default off). Like timing, the heartbeat never changes a run.
pub fn progress_from_env() -> bool {
    std::env::var("ALT_PROGRESS")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// FNV-1a over a canonical description string — the same fingerprint
/// construction `alt-core` uses for compile options, applied here to a
/// benchmark configuration so manifests from different runs of the same
/// figure/platform/scale can be matched up.
fn fnv1a(canonical: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in canonical.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds one platform's wall-clock self-profile into the report: builds
/// the machine-readable timing manifest (phase totals + environment
/// facts + configuration fingerprint), embeds it in the JSON envelope
/// under `timing.<platform>`, prints the top-level phase split, and —
/// with `ALT_BENCH_JSON` set — writes the raw manifest to
/// `$ALT_BENCH_JSON/<bench>_<platform>.timing.json`. A disabled handle
/// (no `ALT_TIMING`) is a no-op.
pub fn finish_timing(
    report: &mut BenchReport,
    bench: &str,
    platform: &str,
    timing: &alt_telemetry::Timing,
    env: &[(&str, serde_json::Value)],
) {
    let mut facts: Vec<(&str, serde_json::Value)> = vec![
        ("bench", serde_json::json!(bench)),
        ("platform", serde_json::json!(platform)),
        ("os", serde_json::json!(std::env::consts::OS)),
        ("arch", serde_json::json!(std::env::consts::ARCH)),
        ("jobs", serde_json::json!(jobs() as u64)),
        ("budget_scale", serde_json::json!(budget_scale())),
    ];
    facts.extend(env.iter().map(|(k, v)| (*k, v.clone())));
    // The fingerprint names the *configuration*, not the environment:
    // jobs is excluded because every jobs value is result-identical.
    let fp = fnv1a(&format!(
        "bench={bench} platform={platform} scale={}",
        budget_scale()
    ));
    let Some(manifest) = timing.manifest(&facts, fp) else {
        return;
    };
    if let Some(root) = timing.snapshot() {
        let parts: Vec<String> = root
            .children
            .iter()
            .map(|c| {
                format!(
                    "{} {:.2} s x{}",
                    c.name,
                    c.inclusive_us as f64 / 1e6,
                    c.count
                )
            })
            .collect();
        if !parts.is_empty() {
            println!("ALT pipeline timing on {platform}: {}", parts.join(", "));
        }
    }
    if let Ok(dir) = std::env::var("ALT_BENCH_JSON") {
        let path = std::path::Path::new(&dir).join(format!("{bench}_{platform}.timing.json"));
        let body = serde_json::to_string_pretty(&manifest).unwrap_or_default();
        if let Err(e) = std::fs::write(&path, format!("{body}\n")) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    report.note_timing(platform, manifest);
}

/// Formats a latency in adaptive units.
pub fn fmt_latency(seconds: f64) -> String {
    if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

/// A simple fixed-width table printer.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer and prints the header row.
    pub fn new(headers: &[&str], widths: &[usize]) -> Self {
        let p = Self {
            widths: widths.to_vec(),
        };
        p.row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        p.rule();
        p
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let line: Vec<String> = cells
            .iter()
            .zip(self.widths.iter())
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("{}", line.join("  "));
    }

    /// Prints a horizontal rule.
    pub fn rule(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
        println!("{}", "-".repeat(total));
    }
}

/// Collects a benchmark binary's JSON result rows and writes them in a
/// single envelope — `{bench, budget_scale, run_summary, rows}` — to
/// `$ALT_BENCH_JSON/<name>.json`. The embedded [`RunSummaryRecord`] is
/// the same schema the tuning trace ends with, so downstream tooling can
/// treat figure results and `altc` traces uniformly.
pub struct BenchReport {
    name: String,
    started: std::time::Instant,
    rows: Vec<serde_json::Value>,
    metrics: std::collections::BTreeMap<String, f64>,
    profile: Option<serde_json::Value>,
    timing: serde_json::Map,
    joint_budget: u64,
    loop_budget: u64,
    measurements: u64,
    best_latency_s: f64,
}

impl BenchReport {
    /// Starts a report (and its wall-time clock) for one figure/table.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            started: std::time::Instant::now(),
            rows: Vec::new(),
            metrics: std::collections::BTreeMap::new(),
            profile: None,
            timing: serde_json::Map::default(),
            joint_budget: 0,
            loop_budget: 0,
            measurements: 0,
            best_latency_s: f64::INFINITY,
        }
    }

    /// Appends one result row.
    pub fn push(&mut self, row: serde_json::Value) {
        self.rows.push(row);
    }

    /// The rows collected so far.
    pub fn rows(&self) -> &[serde_json::Value] {
        &self.rows
    }

    /// Records a named headline metric (e.g.
    /// `intel-cpu/alt_geomean_latency_s`). Metrics go into the JSON
    /// envelope and the `BENCH_<name>.json` trajectory the regression
    /// gate (`scripts/bench_check`) compares across runs. By convention
    /// metric names containing `latency` are lower-is-better and names
    /// containing `speedup` are higher-is-better; anything else is
    /// informational only.
    pub fn note_metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.insert(name.into(), value);
    }

    /// Accumulates into a named metric (creating it at zero): used for
    /// counters folded over many runs, e.g. the verifier's `verify.*`
    /// set-engine totals.
    pub fn add_metric(&mut self, name: impl Into<String>, value: f64) {
        *self.metrics.entry(name.into()).or_insert(0.0) += value;
    }

    /// Attaches the winning schedule's cost-attribution summary (the
    /// value of `alt_profiler::summary_json`) to the envelope.
    pub fn set_profile(&mut self, profile: serde_json::Value) {
        self.profile = Some(profile);
    }

    /// Embeds one platform's pipeline-timing manifest (the value of
    /// `alt_telemetry::Timing::manifest`) in the envelope under
    /// `timing.<platform>`. See [`finish_timing`] for the usual path.
    pub fn note_timing(&mut self, platform: &str, manifest: serde_json::Value) {
        self.timing.insert(platform.to_string(), manifest);
    }

    /// Accumulates the budgets configured for one tuning run.
    pub fn note_budget(&mut self, joint: u64, loop_: u64) {
        self.joint_budget += joint;
        self.loop_budget += loop_;
    }

    /// Accumulates one tuning run's outcome: measurements consumed and
    /// the latency it reached (the summary keeps the best).
    pub fn note_run(&mut self, measurements: u64, latency_s: f64) {
        self.measurements += measurements;
        if latency_s < self.best_latency_s {
            self.best_latency_s = latency_s;
        }
    }

    /// The aggregated run summary over every noted tuning run.
    pub fn run_summary(&self) -> RunSummaryRecord {
        RunSummaryRecord {
            joint_budget: self.joint_budget,
            loop_budget: self.loop_budget,
            measurements: self.measurements,
            best_latency_s: if self.best_latency_s.is_finite() {
                self.best_latency_s
            } else {
                0.0
            },
            wall_s: self.started.elapsed().as_secs_f64(),
        }
    }

    /// Writes the enveloped rows if `ALT_BENCH_JSON` points at a
    /// directory, and appends a trajectory entry if `ALT_BENCH_TRAJ`
    /// points at one (no-op otherwise, like the text-only default).
    pub fn write(self) {
        let summary = serde_json::to_value(&self.run_summary());
        if let Ok(dir) = std::env::var("ALT_BENCH_JSON") {
            let mut envelope = serde_json::json!({
                "bench": self.name,
                "budget_scale": budget_scale(),
                "run_summary": summary.clone(),
                "metrics": metrics_json(&self.metrics),
                "rows": serde_json::Value::Array(self.rows.clone()),
            });
            if let (serde_json::Value::Object(o), Some(p)) = (&mut envelope, &self.profile) {
                o.insert("profile".to_string(), p.clone());
            }
            if let (serde_json::Value::Object(o), false) = (&mut envelope, self.timing.is_empty()) {
                o.insert(
                    "timing".to_string(),
                    serde_json::Value::Object(self.timing.clone()),
                );
            }
            let path = std::path::Path::new(&dir).join(format!("{}.json", self.name));
            if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(&envelope).unwrap())
            {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        if let Ok(dir) = std::env::var("ALT_BENCH_TRAJ") {
            if let Err(e) = self.append_trajectory(std::path::Path::new(&dir)) {
                eprintln!("warning: could not update trajectory in {dir}: {e}");
            }
        }
    }

    /// Appends `{budget_scale, metrics, run_summary}` to
    /// `<dir>/BENCH_<name>.json`, the per-bench metric trajectory that
    /// `scripts/bench_check` gates regressions on.
    fn append_trajectory(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut entries: Vec<serde_json::Value> = match std::fs::read_to_string(&path) {
            Ok(text) => {
                let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{}: {e:?}", path.display()),
                    )
                })?;
                match v.get("entries").and_then(serde_json::Value::as_array) {
                    Some(a) => a.clone(),
                    None => Vec::new(),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        entries.push(serde_json::json!({
            "budget_scale": budget_scale(),
            "metrics": metrics_json(&self.metrics),
            "run_summary": serde_json::to_value(&self.run_summary()),
        }));
        let doc = serde_json::json!({
            "bench": self.name,
            "entries": serde_json::Value::Array(entries),
        });
        std::fs::write(&path, serde_json::to_string_pretty(&doc).unwrap())
    }
}

/// Per-platform aggregation of per-run search-journal diagnostics
/// (ISSUE 6): each ALT tuning run gets its own in-memory journal, its
/// convergence/calibration summary is folded in here, and the averages
/// land in the [`BenchReport`] metrics (and thus the bench trajectory).
/// With `ALT_BENCH_JSON` set, the raw journals are also written as one
/// JSONL file per platform for `altc inspect`.
#[derive(Default)]
pub struct JournalStats {
    spearman: Vec<f64>,
    p95_frac: Vec<f64>,
    lines: Vec<String>,
}

impl JournalStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one finished tuning run's journal in. `budget` is the
    /// run's configured measurement budget, used to normalize
    /// budget-to-p95-of-final into a fraction comparable across runs.
    pub fn note_run(&mut self, sink: &alt_journal::MemoryJournal, budget: u64) {
        let records = sink.records();
        let insp = alt_journal::inspect(&records);
        // Rank correlation needs at least two (predicted, measured)
        // pairs to mean anything; small-budget runs may have none.
        if insp.calibration.pairs >= 2 {
            self.spearman.push(insp.calibration.final_spearman);
        }
        if budget > 0 {
            if let Some(b) = insp.convergence.budget_to_p95_of_final {
                self.p95_frac.push(b as f64 / budget as f64);
            }
        }
        self.lines.extend(sink.lines());
    }

    /// Records the platform's aggregate journal metrics on the report —
    /// mean final Spearman rank correlation of the cost model and mean
    /// fraction of the budget needed to reach 95% of final quality —
    /// and writes the collected journals to
    /// `$ALT_BENCH_JSON/<bench>_<platform>.journal.jsonl` when set.
    pub fn finish(self, report: &mut BenchReport, bench: &str, platform: &str) {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        if !self.spearman.is_empty() {
            report.note_metric(
                format!("{platform}/journal_final_spearman"),
                mean(&self.spearman),
            );
        }
        if !self.p95_frac.is_empty() {
            report.note_metric(
                format!("{platform}/journal_budget_to_p95_frac"),
                mean(&self.p95_frac),
            );
        }
        if self.lines.is_empty() {
            return;
        }
        if let Ok(dir) = std::env::var("ALT_BENCH_JSON") {
            let path = std::path::Path::new(&dir).join(format!("{bench}_{platform}.journal.jsonl"));
            let mut text = self.lines.join("\n");
            text.push('\n');
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

fn metrics_json(metrics: &std::collections::BTreeMap<String, f64>) -> serde_json::Value {
    serde_json::Value::Object(
        metrics
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::to_value(v)))
            .collect(),
    )
}

/// Geometric mean of positive values.
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// One single-operator workload (paper §7.1).
#[derive(Clone, Debug)]
pub struct OperatorCase {
    /// Operator family name (C2D, GRP, ...).
    pub op: &'static str,
    /// Configuration description.
    pub config: String,
    /// The graph containing exactly this operator.
    pub graph: Graph,
}

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

/// Builds a conv-family single-operator graph.
#[allow(clippy::too_many_arguments)]
fn conv_case(
    op: &'static str,
    n: i64,
    i: i64,
    o: i64,
    hw: i64,
    k: i64,
    stride: i64,
    groups: i64,
    dilation: i64,
) -> OperatorCase {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([n, i, hw, hw]));
    let w = g.add_param("w", Shape::new([o, i / groups, k, k]));
    let _ = ops::conv2d(
        &mut g,
        x,
        w,
        ConvCfg {
            stride,
            groups,
            dilation,
            ..ConvCfg::default()
        },
    );
    OperatorCase {
        op,
        config: format!("n{n}_i{i}_o{o}_s{hw}_k{k}_st{stride}_g{groups}_d{dilation}"),
        graph: g,
    }
}

/// The nine layout-sensitive operator families of Fig. 9, with `count`
/// random configurations each (deterministic in `seed`).
pub fn single_op_cases(count: usize, seed: u64) -> Vec<OperatorCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::new();
    // Sampling pools follow §7.1: batch in [1, 16], channels from a wide
    // list, spatial sizes and kernel sizes from common settings. Sizes
    // are kept divisor-friendly.
    let batches = [1i64, 16];
    let chans = [16i64, 32, 64, 128];
    let spat = [16i64, 32, 64];
    for _ in 0..count {
        let n = pick(&mut rng, &batches);
        let i = pick(&mut rng, &chans);
        let o = pick(&mut rng, &chans);
        let s = pick(&mut rng, &spat);
        let k = pick(&mut rng, &[1i64, 3]);
        let st = pick(&mut rng, &[1i64, 2]);
        let hw = s + k - 1 + (s % st);
        // C2D.
        cases.push(conv_case("C2D", n, i, o, hw, k, st, 1, 1));
        // Group-wise (4 groups).
        let gi = (i / 4).max(1) * 4;
        let go = (o / 4).max(1) * 4;
        cases.push(conv_case("GRP", n, gi, go, hw, k, st, 4, 1));
        // Dilated.
        cases.push(conv_case("DIL", n, i, o, s + (k - 1) * 2 + 1, k, 1, 1, 2));
        // Depth-wise.
        cases.push(conv_case("DEP", n, i, i, hw, k, st, i, 1));
        // C3D.
        {
            let mut g = Graph::new();
            let d = 8 + k - 1;
            let sp = s.min(32) + k - 1;
            let x = g.add_input("x", Shape::new([n, i.min(32), d, sp, sp]));
            let w = g.add_param("w", Shape::new([o.min(32), i.min(32), k, k, k]));
            let _ = ops::conv3d(&mut g, x, w, ConvCfg::default());
            cases.push(OperatorCase {
                op: "C3D",
                config: format!("n{n}_i{}_o{}_s{sp}_k{k}", i.min(32), o.min(32)),
                graph: g,
            });
        }
        // C1D.
        {
            let mut g = Graph::new();
            let len = s * 8 + k - 1;
            let x = g.add_input("x", Shape::new([n, i, len]));
            let w = g.add_param("w", Shape::new([o, i, k]));
            let _ = ops::conv1d(&mut g, x, w, ConvCfg::default());
            cases.push(OperatorCase {
                op: "C1D",
                config: format!("n{n}_i{i}_o{o}_l{len}_k{k}"),
                graph: g,
            });
        }
        // GMM.
        {
            let mut g = Graph::new();
            let m = pick(&mut rng, &[64i64, 128, 256]) * n.min(4);
            let kk = pick(&mut rng, &[64i64, 128, 256]);
            let nn = pick(&mut rng, &[64i64, 128, 256]);
            let a = g.add_input("a", Shape::new([m, kk]));
            let b = g.add_param("b", Shape::new([kk, nn]));
            let _ = ops::gmm(&mut g, a, b);
            cases.push(OperatorCase {
                op: "GMM",
                config: format!("m{m}_k{kk}_n{nn}"),
                graph: g,
            });
        }
        // T2D.
        {
            let mut g = Graph::new();
            let sp = s.min(32);
            let x = g.add_input("x", Shape::new([n, i, sp, sp]));
            let w = g.add_param("w", Shape::new([i, o, k, k]));
            let _ = ops::tconv2d(&mut g, x, w, st);
            cases.push(OperatorCase {
                op: "T2D",
                config: format!("n{n}_i{i}_o{o}_s{sp}_k{k}_st{st}"),
                graph: g,
            });
        }
        // T3D.
        {
            let mut g = Graph::new();
            let sp = 16;
            let x = g.add_input("x", Shape::new([n, i.min(32), 4, sp, sp]));
            let w = g.add_param("w", Shape::new([i.min(32), o.min(32), k, k, k]));
            let _ = ops::tconv3d(&mut g, x, w, st);
            cases.push(OperatorCase {
                op: "T3D",
                config: format!("n{n}_i{}_o{}_s{sp}_k{k}_st{st}", i.min(32), o.min(32)),
                graph: g,
            });
        }
    }
    cases
}

/// Normalized performance: each case's latencies scaled so the *worst*
/// system gets its speedup = 1, then geometric-mean per system (the
/// paper's normalization for Figs. 9/10).
pub fn normalized_performance(
    per_case: &[HashMap<String, f64>],
    systems: &[&str],
) -> HashMap<String, f64> {
    let mut speedups: HashMap<String, Vec<f64>> = HashMap::new();
    for case in per_case {
        let worst = case.values().cloned().fold(f64::MIN, f64::max);
        for (sys, lat) in case {
            speedups.entry(sys.clone()).or_default().push(worst / lat);
        }
    }
    let best_mean = systems
        .iter()
        .filter_map(|s| speedups.get(*s).map(|v| geomean(v)))
        .fold(f64::MIN, f64::max);
    systems
        .iter()
        .map(|s| {
            let m = speedups.get(*s).map(|v| geomean(v)).unwrap_or(0.0);
            (s.to_string(), m / best_mean)
        })
        .collect()
}

/// Three-platform list used by most figures.
pub fn platforms() -> Vec<MachineProfile> {
    vec![
        alt_sim::intel_cpu(),
        alt_sim::nvidia_gpu(),
        alt_sim::arm_cpu(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_cover_all_nine_ops() {
        let cases = single_op_cases(1, 0);
        let ops: std::collections::HashSet<_> = cases.iter().map(|c| c.op).collect();
        for o in [
            "C2D", "GRP", "DIL", "DEP", "C3D", "C1D", "GMM", "T2D", "T3D",
        ] {
            assert!(ops.contains(o), "missing {o}");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = single_op_cases(2, 7);
        let b = single_op_cases(2, 7);
        assert_eq!(
            a.iter().map(|c| c.config.clone()).collect::<Vec<_>>(),
            b.iter().map(|c| c.config.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn trajectory_appends_entries() {
        let dir = std::env::temp_dir().join(format!("alt-bench-traj-{}", std::process::id()));
        for latency in [1.5e-3, 1.2e-3] {
            let mut r = BenchReport::new("figtest");
            r.note_metric("intel-cpu/alt_geomean_latency_s", latency);
            r.append_trajectory(&dir).unwrap();
        }
        let text = std::fs::read_to_string(dir.join("BENCH_figtest.json")).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let entries = doc.get("entries").and_then(|e| e.as_array()).unwrap();
        assert_eq!(entries.len(), 2);
        let last = entries[1]
            .get("metrics")
            .and_then(|m| m.get("intel-cpu/alt_geomean_latency_s"))
            .and_then(serde_json::Value::as_f64)
            .unwrap();
        assert_eq!(last, 1.2e-3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_stats_aggregate_into_report_metrics() {
        use alt_journal::{outcome, provenance, CandidateRecord, JournalRecord};
        let (journal, sink) = alt_journal::Journal::memory();
        // Four budgeted candidates with a perfectly-ranked model; the
        // best appears at budget 2 of 4, so p95-frac is 0.5.
        for (i, (pred, lat)) in [(-4.0, 4.0), (-1.0, 1.0), (-2.0, 2.0), (-3.0, 3.0)]
            .into_iter()
            .enumerate()
        {
            journal.emit(JournalRecord::Candidate(CandidateRecord {
                op: "c2d#0".into(),
                stage: "loop".into(),
                round: 1,
                provenance: provenance::RANDOM.into(),
                point: vec![i as u64],
                outcome: outcome::MEASURED.into(),
                predicted: Some(pred),
                latency_s: Some(lat),
                vcode: None,
                error: None,
                attempts: 1,
                budget_end: i as u64 + 1,
                program_fp: None,
                cache_key: None,
            }));
        }
        let mut stats = JournalStats::new();
        stats.note_run(&sink, 4);
        let mut report = BenchReport::new("journal-stats-test");
        stats.finish(&mut report, "figtest", "intel-cpu");
        let dir = std::env::temp_dir().join(format!("alt-bench-jstats-{}", std::process::id()));
        report.append_trajectory(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_journal-stats-test.json")).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let metrics = &doc["entries"][0]["metrics"];
        let spearman = metrics["intel-cpu/journal_final_spearman"]
            .as_f64()
            .unwrap();
        assert!((spearman - 1.0).abs() < 1e-12, "{spearman}");
        let frac = metrics["intel-cpu/journal_budget_to_p95_frac"]
            .as_f64()
            .unwrap();
        assert!((frac - 0.5).abs() < 1e-12, "{frac}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_best_is_one() {
        let mut case = HashMap::new();
        case.insert("a".to_string(), 1.0);
        case.insert("b".to_string(), 2.0);
        let norm = normalized_performance(&[case], &["a", "b"]);
        assert!((norm["a"] - 1.0).abs() < 1e-9);
        assert!((norm["b"] - 0.5).abs() < 1e-9);
    }
}
