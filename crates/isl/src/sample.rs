//! Witness extraction: find a concrete integer point in a basic set by
//! propagation + bound-directed backtracking.
//!
//! The sets this engine sees in practice are loop domains: every
//! dimension carries explicit box bounds and every existential is pinned
//! by a defining equality (div/mod quotients, remainders, bit values),
//! so unit propagation plus a shallow search over the tightest-bounded
//! variable finds a point quickly. The search is budgeted; running out
//! of budget yields `None` (no witness — the caller still has the
//! emptiness verdict, just not a printable point).

use crate::{div_ceil, div_floor, BasicSet, Coeff, Row};

/// Total assignment budget per sample query.
const MAX_STEPS: u32 = 50_000;
/// Values tried per variable before backtracking gives up on it.
const MAX_WIDTH: Coeff = 512;

pub(crate) fn sample(bs: &BasicSet) -> Option<Vec<i64>> {
    let n = bs.n_vars();
    let mut vals: Vec<Option<Coeff>> = vec![None; n];
    let mut steps = MAX_STEPS;
    if !search(bs.eqs(), bs.ineqs(), &mut vals, &mut steps) {
        return None;
    }
    let mut out = Vec::with_capacity(bs.n_dims());
    for v in vals.iter().take(bs.n_dims()) {
        out.push(i64::try_from((*v)?).ok()?);
    }
    Some(out)
}

/// Residual of a row under a partial assignment: the constant part plus
/// all assigned terms, and the list of unassigned (var, coeff) pairs.
fn residual(row: &Row, vals: &[Option<Coeff>]) -> Option<(Coeff, Vec<(usize, Coeff)>)> {
    let n = vals.len();
    let mut acc = row[n];
    let mut open = Vec::new();
    for (i, &c) in row.iter().take(n).enumerate() {
        if c == 0 {
            continue;
        }
        match vals[i] {
            Some(v) => acc = acc.checked_add(c.checked_mul(v)?)?,
            None => open.push((i, c)),
        }
    }
    Some((acc, open))
}

/// Unit propagation: repeatedly pins variables forced by equalities and
/// rejects violated ground rows. Returns `false` on contradiction or
/// overflow.
fn propagate(eqs: &[Row], ineqs: &[Row], vals: &mut [Option<Coeff>]) -> bool {
    loop {
        let mut changed = false;
        for eq in eqs {
            let Some((acc, open)) = residual(eq, vals) else {
                return false;
            };
            match open.as_slice() {
                [] if acc != 0 => return false,
                [(j, c)] => {
                    if acc.rem_euclid(c.abs()) != 0 {
                        return false;
                    }
                    vals[*j] = Some(-acc / c);
                    changed = true;
                }
                _ => {}
            }
        }
        for ineq in ineqs {
            let Some((acc, open)) = residual(ineq, vals) else {
                return false;
            };
            if open.is_empty() && acc < 0 {
                return false;
            }
        }
        if !changed {
            return true;
        }
    }
}

/// Effective bounds on `var` from rows where it is the only unassigned
/// variable. Returns `(lo, hi)` with either side possibly unbounded.
fn bounds_of(
    ineqs: &[Row],
    vals: &[Option<Coeff>],
    var: usize,
) -> Option<(Option<Coeff>, Option<Coeff>)> {
    let mut lo: Option<Coeff> = None;
    let mut hi: Option<Coeff> = None;
    for row in ineqs {
        let (acc, open) = residual(row, vals)?;
        if let [(j, c)] = open.as_slice() {
            if *j != var {
                continue;
            }
            if *c > 0 {
                // c·x + acc ≥ 0 ⇒ x ≥ ⌈−acc/c⌉
                let b = div_ceil(-acc, *c);
                lo = Some(lo.map_or(b, |l: Coeff| l.max(b)));
            } else {
                // c·x + acc ≥ 0, c < 0 ⇒ x ≤ ⌊acc/−c⌋
                let b = div_floor(acc, -c);
                hi = Some(hi.map_or(b, |h: Coeff| h.min(b)));
            }
        }
    }
    Some((lo, hi))
}

fn search(eqs: &[Row], ineqs: &[Row], vals: &mut Vec<Option<Coeff>>, steps: &mut u32) -> bool {
    if *steps == 0 {
        return false;
    }
    *steps -= 1;
    let snapshot = vals.clone();
    if !propagate(eqs, ineqs, vals) {
        *vals = snapshot;
        return false;
    }
    // Pick the unassigned variable with the tightest finite range.
    let mut pick: Option<(usize, Option<Coeff>, Option<Coeff>)> = None;
    let mut pick_width: Option<Coeff> = None;
    for v in 0..vals.len() {
        if vals[v].is_some() {
            continue;
        }
        let Some((lo, hi)) = bounds_of(ineqs, vals, v) else {
            *vals = snapshot;
            return false;
        };
        if let (Some(l), Some(h)) = (lo, hi) {
            if h < l {
                *vals = snapshot;
                return false;
            }
            let w = h - l;
            if pick_width.is_none_or(|pw| w < pw) {
                pick = Some((v, lo, hi));
                pick_width = Some(w);
            }
        } else if pick_width.is_none() && pick.is_none() {
            pick = Some((v, lo, hi));
        }
    }
    let Some((var, lo, hi)) = pick else {
        // Everything assigned; propagate() already validated ground rows.
        return true;
    };
    let candidates: Vec<Coeff> = match (lo, hi) {
        (Some(l), Some(h)) => {
            let width = (h - l).min(MAX_WIDTH);
            (0..=width).map(|i| l + i).collect()
        }
        (Some(l), None) => (0..=MAX_WIDTH.min(64)).map(|i| l + i).collect(),
        (None, Some(h)) => (0..=MAX_WIDTH.min(64)).map(|i| h - i).collect(),
        // Completely unconstrained here: try small magnitudes.
        (None, None) => (0..=16).flat_map(|i| [i, -i]).collect(),
    };
    for c in candidates {
        vals[var] = Some(c);
        if search(eqs, ineqs, vals, steps) {
            return true;
        }
        *vals = snapshot.clone();
        if *steps == 0 {
            return false;
        }
    }
    *vals = snapshot;
    false
}

#[cfg(test)]
mod tests {
    use crate::BasicSet;

    #[test]
    fn samples_div_mod_encoding() {
        // x in [0,12), q = x div 5, r = x mod 5, with x fixed to 11.
        let mut bs = BasicSet::universe(1);
        bs.bound(0, 0, 12);
        let q = bs.new_div();
        let r = bs.new_div();
        bs.bound(r, 0, 5);
        bs.add_eq(&[(0, 1), (q, -5), (r, -1)], 0); // x = 5q + r
        bs.fix(0, 11);
        assert_eq!(bs.sample(), Some(vec![11]));
        // And the quotient is pinned: q must be 2 — force q = 3, empty.
        let mut bad = bs.clone();
        bad.fix(q, 3);
        assert_eq!(bad.sample(), None);
    }

    #[test]
    fn samples_respect_tight_corners() {
        let mut bs = BasicSet::universe(2);
        bs.bound(0, 0, 100);
        bs.bound(1, 0, 100);
        bs.add_eq(&[(0, 1), (1, 1)], -150); // x + y = 150
        bs.add_ge(&[(0, 1)], -90); // x >= 90
        let p = bs.sample().expect("non-empty");
        assert!(p[0] >= 90 && p[0] < 100);
        assert_eq!(p[0] + p[1], 150);
    }
}
