//! Exact integer emptiness via the Omega test (Pugh 1991): equality
//! elimination with gcd divisibility checks, then Fourier–Motzkin with
//! integer tightening, dark-shadow certification, and splintering.
//!
//! Convention: `Some(true)` = definitely empty, `Some(false)` =
//! definitely non-empty, `None` = work cap exceeded or checked `i128`
//! arithmetic overflowed (the caller treats this as "unknown").

use crate::{div_floor, gcd, Coeff, Row};

/// Total budget of variable eliminations + splinter probes per query.
const MAX_FUEL: u32 = 4000;
/// Inequality-count cap; FM can square the row count per elimination.
const MAX_INEQS: usize = 800;
/// Cap on splinter probes for a single inexact elimination.
const MAX_SPLINTERS: Coeff = 24;

pub(crate) fn empty(eqs: &[Row], ineqs: &[Row], n: usize) -> Option<bool> {
    let mut fuel = MAX_FUEL;
    solve(eqs.to_vec(), ineqs.to_vec(), n, &mut fuel)
}

/// `a mod̂ m`: the representative of `a (mod m)` in `(-m/2, m/2]`.
fn mod_hat(a: Coeff, m: Coeff) -> Coeff {
    let r = a.rem_euclid(m);
    if r > m / 2 {
        r - m
    } else {
        r
    }
}

/// Normalizes an equality row in place. Returns `Some(false)` if the row
/// is infeasible on its own, `Some(true)` if it is trivially satisfied
/// (and should be dropped), `None` to keep it.
fn norm_eq(row: &mut Row, n: usize) -> Option<bool> {
    let mut g: Coeff = 0;
    for &c in row.iter().take(n) {
        g = gcd(g, c);
    }
    let konst = row[n];
    if g == 0 {
        return Some(konst == 0);
    }
    if konst.rem_euclid(g) != 0 {
        return Some(false);
    }
    for c in row.iter_mut() {
        *c /= g;
    }
    None
}

/// Normalizes an inequality row in place with integer tightening
/// (`Σ aᵢvᵢ + c ≥ 0` with `g = gcd(aᵢ)` becomes `Σ (aᵢ/g)vᵢ + ⌊c/g⌋ ≥ 0`).
/// Returns `Some(false)` if infeasible alone, `Some(true)` if trivially
/// satisfied, `None` to keep.
fn norm_ineq(row: &mut Row, n: usize) -> Option<bool> {
    let mut g: Coeff = 0;
    for &c in row.iter().take(n) {
        g = gcd(g, c);
    }
    if g == 0 {
        return Some(row[n] >= 0);
    }
    if g > 1 {
        for c in row.iter_mut().take(n) {
            *c /= g;
        }
        row[n] = div_floor(row[n], g);
    }
    None
}

/// Substitutes the unit-coefficient equality `eq` (coefficient `s = ±1`
/// at variable `k`) into `row`, eliminating variable `k`.
fn substitute(row: &mut Row, eq: &Row, k: usize, s: Coeff) -> Option<()> {
    let d = row[k];
    if d == 0 {
        return Some(());
    }
    let f = d.checked_mul(s)?;
    for (r, e) in row.iter_mut().zip(eq.iter()) {
        *r = r.checked_sub(f.checked_mul(*e)?)?;
    }
    debug_assert_eq!(row[k], 0);
    Some(())
}

#[allow(clippy::too_many_lines)]
fn solve(mut eqs: Vec<Row>, mut ineqs: Vec<Row>, mut n: usize, fuel: &mut u32) -> Option<bool> {
    // Phase 1: eliminate equalities.
    while let Some(mut eq) = eqs.pop() {
        if *fuel == 0 {
            return None;
        }
        *fuel -= 1;
        match norm_eq(&mut eq, n) {
            Some(true) => continue,
            Some(false) => return Some(true),
            None => {}
        }
        // Smallest non-zero coefficient.
        let (k, ak) = eq
            .iter()
            .take(n)
            .enumerate()
            .filter(|(_, c)| **c != 0)
            .min_by_key(|(_, c)| c.abs())
            .map(|(i, c)| (i, *c))?;
        if ak.abs() == 1 {
            for row in eqs.iter_mut().chain(ineqs.iter_mut()) {
                substitute(row, &eq, k, ak)?;
            }
        } else {
            // Pugh's reduction: introduce σ with
            //   Σ mod̂(aᵢ,m)·vᵢ + mod̂(c,m) − m·σ = 0,  m = |a_k| + 1,
            // whose coefficient at v_k is ±1; substitute it everywhere
            // (shrinking the original equality's coefficients) and retry.
            let m = ak.abs().checked_add(1)?;
            let sigma = n;
            n += 1;
            for row in eqs.iter_mut().chain(ineqs.iter_mut()) {
                row.insert(sigma, 0);
            }
            eq.insert(sigma, 0);
            let mut new_eq: Row = eq.iter().map(|&c| mod_hat(c, m)).collect();
            new_eq[sigma] = -m;
            let s = new_eq[k];
            debug_assert_eq!(s.abs(), 1);
            substitute(&mut eq, &new_eq, k, s)?;
            for row in eqs.iter_mut().chain(ineqs.iter_mut()) {
                substitute(row, &new_eq, k, s)?;
            }
            eqs.push(eq);
        }
    }

    // Phase 2: Fourier–Motzkin over the inequalities.
    loop {
        if *fuel == 0 || ineqs.len() > MAX_INEQS {
            return None;
        }
        *fuel -= 1;
        // Normalize + prune: keep, per coefficient vector, only the
        // tightest constant.
        let mut seen: std::collections::BTreeMap<Vec<Coeff>, Coeff> =
            std::collections::BTreeMap::new();
        for mut row in std::mem::take(&mut ineqs) {
            match norm_ineq(&mut row, n) {
                Some(true) => continue,
                Some(false) => return Some(true),
                None => {}
            }
            let konst = row[n];
            row.truncate(n);
            match seen.get_mut(&row) {
                Some(k) => *k = (*k).min(konst),
                None => {
                    seen.insert(row, konst);
                }
            }
        }
        // Opposite-row contradiction check + rebuild.
        for (coeffs, konst) in &seen {
            let neg: Vec<Coeff> = coeffs.iter().map(|c| -c).collect();
            if let Some(nk) = seen.get(&neg) {
                // Σ c·v ≥ −k and Σ c·v ≤ nk  ⇒ need −k ≤ nk.
                if konst.checked_add(*nk)? < 0 {
                    return Some(true);
                }
            }
            let mut row = coeffs.clone();
            row.push(*konst);
            ineqs.push(row);
        }

        // Pick a variable to eliminate.
        let mut best: Option<(usize, usize, usize, bool)> = None; // (var, lowers, uppers, exact)
        for v in 0..n {
            let mut lowers = 0usize;
            let mut uppers = 0usize;
            let mut exact = true;
            let mut used = false;
            for row in &ineqs {
                let c = row[v];
                if c > 0 {
                    lowers += 1;
                    used = true;
                } else if c < 0 {
                    uppers += 1;
                    used = true;
                }
                if c.abs() > 1 {
                    exact = false;
                }
            }
            if !used {
                continue;
            }
            if lowers == 0 || uppers == 0 {
                // Unbounded in one direction: every row touching `v` can
                // be satisfied by pushing `v` far enough. Drop them.
                best = Some((v, lowers, uppers, true));
                break;
            }
            let cost = lowers * uppers;
            let better = match &best {
                None => true,
                Some((_, bl, bu, bx)) => {
                    let bcost = bl * bu;
                    cost < bcost || (cost == bcost && exact && !bx)
                }
            };
            if better {
                best = Some((v, lowers, uppers, exact));
            }
        }
        let Some((v, lowers, uppers, _)) = best else {
            // No variable appears in any inequality: all rows were
            // constants (already checked) — the system is satisfiable.
            return Some(false);
        };
        if lowers == 0 || uppers == 0 {
            ineqs.retain(|row| row[v] == 0);
            continue;
        }

        let mut carried: Vec<Row> = Vec::new();
        let mut lower_rows: Vec<Row> = Vec::new();
        let mut upper_rows: Vec<Row> = Vec::new();
        for row in &ineqs {
            match row[v].cmp(&0) {
                std::cmp::Ordering::Greater => lower_rows.push(row.clone()),
                std::cmp::Ordering::Less => upper_rows.push(row.clone()),
                std::cmp::Ordering::Equal => carried.push(row.clone()),
            }
        }
        let mut exact = true;
        let mut real: Vec<Row> = carried.clone();
        let mut dark: Vec<Row> = carried.clone();
        for lo in &lower_rows {
            let a = lo[v];
            for up in &upper_rows {
                let b = -up[v];
                if a > 1 && b > 1 {
                    exact = false;
                }
                // real: b·(lo) + a·(up) ≥ 0 with the v column cancelling.
                let mut combined: Row = Vec::with_capacity(n + 1);
                for (l, u) in lo.iter().zip(up.iter()) {
                    combined.push(b.checked_mul(*l)?.checked_add(a.checked_mul(*u)?)?);
                }
                debug_assert_eq!(combined[v], 0);
                real.push(combined.clone());
                // dark: additionally ≥ (a−1)(b−1).
                let gap = (a - 1).checked_mul(b - 1)?;
                let last = combined.len() - 1;
                combined[last] = combined[last].checked_sub(gap)?;
                dark.push(combined);
            }
        }

        if exact {
            ineqs = real;
            continue;
        }

        // Inexact elimination: dark shadow certifies non-emptiness, the
        // real shadow certifies emptiness, splinters settle the gap.
        match solve(Vec::new(), dark, n, fuel) {
            Some(false) => return Some(false),
            other => {
                let dark_empty = other;
                let real_empty = solve(Vec::new(), real, n, fuel);
                if real_empty == Some(true) {
                    return Some(true);
                }
                // Splinter: any integer solution not in the dark shadow
                // hugs a lower bound: for some lower row (a·v + P ≥ 0)
                // and some 0 ≤ i ≤ (a·b_max − a − b_max)/b_max, it
                // satisfies a·v + P = i.
                let b_max = upper_rows.iter().map(|r| -r[v]).max()?;
                let mut all_empty = true;
                let mut budget = MAX_SPLINTERS;
                for lo in &lower_rows {
                    let a = lo[v];
                    let hi = div_floor(
                        a.checked_mul(b_max)?.checked_sub(a)?.checked_sub(b_max)?,
                        b_max,
                    );
                    for i in 0..=hi {
                        budget -= 1;
                        if budget < 0 {
                            return None;
                        }
                        let mut eq = lo.clone();
                        let last = eq.len() - 1;
                        eq[last] = eq[last].checked_sub(i)?;
                        match solve(vec![eq], ineqs.clone(), n, fuel) {
                            Some(false) => return Some(false),
                            Some(true) => {}
                            None => all_empty = false,
                        }
                    }
                }
                return if all_empty && dark_empty == Some(true) {
                    Some(true)
                } else {
                    None
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(coeffs: &[Coeff], konst: Coeff) -> Row {
        let mut r = coeffs.to_vec();
        r.push(konst);
        r
    }

    #[test]
    fn divisibility_split() {
        // 2x = 1 has no integer solution.
        assert_eq!(empty(&[row(&[2], -1)], &[], 1), Some(true));
        // 2x = 4 does.
        assert_eq!(empty(&[row(&[2], -4)], &[], 1), Some(false));
        // 3x + 6y = 2: gcd 3 does not divide 2.
        assert_eq!(empty(&[row(&[3, 6], -2)], &[], 2), Some(true));
        // 3x + 5y = 2 is solvable (gcd 1).
        assert_eq!(empty(&[row(&[3, 5], -2)], &[], 2), Some(false));
    }

    #[test]
    fn dark_shadow_gap() {
        // Classic Omega example: 3 ≤ 3x ≤ 4 — rationally non-empty,
        // integer x = 1 works here (3·1 = 3), so non-empty…
        assert_eq!(empty(&[], &[row(&[3], -3), row(&[-3], 4)], 1), Some(false));
        // …but 4 ≤ 3x ≤ 5 has a rational solution and no integer one.
        assert_eq!(empty(&[], &[row(&[3], -4), row(&[-3], 5)], 1), Some(true));
    }

    #[test]
    fn coupled_inexact() {
        // 2x = 3y with 1 ≤ y ≤ 1 forces 2x = 3: empty.
        assert_eq!(
            empty(
                &[row(&[2, -3], 0)],
                &[row(&[0, 1], -1), row(&[0, -1], 1)],
                2
            ),
            Some(true)
        );
        // 2x = 3y with 2 ≤ y ≤ 2: x = 3.
        assert_eq!(
            empty(
                &[row(&[2, -3], 0)],
                &[row(&[0, 1], -2), row(&[0, -1], 2)],
                2
            ),
            Some(false)
        );
    }

    #[test]
    fn unbounded_direction_drops_rows() {
        // x ≥ 10 with x otherwise unbounded: non-empty.
        assert_eq!(empty(&[], &[row(&[1], -10)], 1), Some(false));
        // x ≥ 10 ∧ x ≤ 3: empty.
        assert_eq!(empty(&[], &[row(&[1], -10), row(&[-1], 3)], 1), Some(true));
    }
}
