//! alt-isl: a dependency-free Presburger-lite engine over quasi-affine
//! integer sets and relations.
//!
//! The model is deliberately small. A [`BasicSet`] is a conjunction of
//! affine equalities and inequalities over named integer dimensions plus
//! anonymous existential ("div") variables — enough to encode floordiv
//! and mod by positive constants (`q = e div c  ⇔  e = c·q + r ∧ 0 ≤ r <
//! c`), bit decompositions, and products with a {0,1}-bounded factor. A
//! [`Set`] is a finite union of basic sets (disjunction — used for
//! `min`/`max` branches), and a [`Relation`] is a set over `[in..., out...]`
//! dimensions with exact composition by quantifying the mid dimensions.
//!
//! Emptiness is decided *exactly* over the integers with the Omega test:
//! equality elimination with gcd divisibility checks (including Pugh's
//! unit-coefficient reduction for equalities with no ±1 coefficient),
//! then Fourier–Motzkin per variable with integer tightening, where an
//! inexact elimination is sandwiched between the real shadow (empty ⇒
//! empty) and the dark shadow (non-empty ⇒ non-empty) and resolved by
//! splintering when the two disagree. All arithmetic is checked `i128`;
//! overflow or exceeding the work caps yields `None` ("unknown") rather
//! than a wrong answer, so callers can fall back to a conservative
//! analysis.
//!
//! Witnesses: [`BasicSet::sample`] extracts a concrete integer point from
//! a non-empty set by bound-directed backtracking search — the engine
//! behind `altc verify --explain` counterexamples.

mod omega;
mod sample;

/// Internal coefficient type. `i128` gives headroom for stride products
/// of `i64` extents; every operation is checked and overflow degrades to
/// "unknown" instead of wrapping.
pub type Coeff = i128;

/// A constraint row: coefficients over all variables (dims then divs)
/// followed by the constant term.
pub(crate) type Row = Vec<Coeff>;

/// Tri-state answer for questions the engine may be unable to decide
/// within its work caps (or without coefficient overflow).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Definitely true.
    Yes,
    /// Definitely false.
    No,
    /// The engine gave up (work cap or arithmetic overflow); callers
    /// must treat the question as undecided.
    Unknown,
}

impl Verdict {
    fn from_opt(o: Option<bool>) -> Self {
        match o {
            Some(true) => Verdict::Yes,
            Some(false) => Verdict::No,
            None => Verdict::Unknown,
        }
    }
}

/// A conjunction of affine constraints over `n_dim` visible dimensions
/// plus `n_div` existentially quantified variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicSet {
    n_dim: usize,
    n_div: usize,
    eqs: Vec<Row>,
    ineqs: Vec<Row>,
}

impl BasicSet {
    /// The unconstrained set over `n_dim` dimensions.
    #[must_use]
    pub fn universe(n_dim: usize) -> Self {
        BasicSet {
            n_dim,
            n_div: 0,
            eqs: Vec::new(),
            ineqs: Vec::new(),
        }
    }

    /// Number of visible dimensions.
    #[must_use]
    pub fn n_dims(&self) -> usize {
        self.n_dim
    }

    /// Total variables (dims + existential divs); valid var indices are
    /// `0..n_vars()`.
    #[must_use]
    pub fn n_vars(&self) -> usize {
        self.n_dim + self.n_div
    }

    /// Number of constraints (equalities + inequalities).
    #[must_use]
    pub fn n_constraints(&self) -> usize {
        self.eqs.len() + self.ineqs.len()
    }

    /// Adds a fresh existential variable and returns its var index.
    pub fn new_div(&mut self) -> usize {
        let at = self.n_dim + self.n_div;
        for row in self.eqs.iter_mut().chain(self.ineqs.iter_mut()) {
            row.insert(at, 0);
        }
        self.n_div += 1;
        at
    }

    fn row(&self, terms: &[(usize, Coeff)], konst: Coeff) -> Row {
        let mut row = vec![0; self.n_vars() + 1];
        for &(v, c) in terms {
            assert!(v < self.n_vars(), "var index {v} out of range");
            row[v] += c;
        }
        *row.last_mut().expect("row is non-empty") = konst;
        row
    }

    /// Adds the equality `Σ terms + konst == 0`.
    pub fn add_eq(&mut self, terms: &[(usize, Coeff)], konst: Coeff) {
        let row = self.row(terms, konst);
        self.eqs.push(row);
    }

    /// Adds the inequality `Σ terms + konst >= 0`.
    pub fn add_ge(&mut self, terms: &[(usize, Coeff)], konst: Coeff) {
        let row = self.row(terms, konst);
        self.ineqs.push(row);
    }

    /// Constrains `lo <= var < hi` (half-open box bound).
    pub fn bound(&mut self, var: usize, lo: Coeff, hi: Coeff) {
        self.add_ge(&[(var, 1)], -lo);
        self.add_ge(&[(var, -1)], hi - 1);
    }

    /// Pins `var` to a constant value.
    pub fn fix(&mut self, var: usize, value: Coeff) {
        self.add_eq(&[(var, 1)], -value);
    }

    /// Conjunction of two basic sets over the same dimension space; the
    /// divs of `other` are renumbered after the divs of `self`.
    #[must_use]
    pub fn intersect(&self, other: &Self) -> Self {
        assert_eq!(self.n_dim, other.n_dim, "dimension mismatch");
        let mut out = self.clone();
        let shift = self.n_div;
        out.n_div += other.n_div;
        for row in out.eqs.iter_mut().chain(out.ineqs.iter_mut()) {
            for _ in 0..other.n_div {
                row.insert(row.len() - 1, 0);
            }
        }
        for row in &other.eqs {
            out.eqs.push(remap_row(
                row,
                other.n_dim,
                other.n_div,
                self.n_dim,
                shift,
                out.n_vars(),
            ));
        }
        for row in &other.ineqs {
            out.ineqs.push(remap_row(
                row,
                other.n_dim,
                other.n_div,
                self.n_dim,
                shift,
                out.n_vars(),
            ));
        }
        out
    }

    /// Converts the dimensions in `drop` (indices into `0..n_dim`) into
    /// existential divs, producing a set over the remaining dimensions in
    /// their original order.
    #[must_use]
    pub fn project_out_dims(&self, drop: &[usize]) -> Self {
        let keep: Vec<usize> = (0..self.n_dim).filter(|i| !drop.contains(i)).collect();
        let total = self.n_vars();
        // New order: kept dims, dropped dims (as divs), old divs.
        let mut perm = vec![0usize; total];
        let mut pos = 0;
        for &k in &keep {
            perm[k] = pos;
            pos += 1;
        }
        for &d in drop {
            perm[d] = pos;
            pos += 1;
        }
        for p in perm.iter_mut().take(total).skip(self.n_dim) {
            *p = pos;
            pos += 1;
        }
        let map = |row: &Row| -> Row {
            let mut out = vec![0; total + 1];
            for (i, &c) in row.iter().take(total).enumerate() {
                out[perm[i]] = c;
            }
            out[total] = row[total];
            out
        };
        BasicSet {
            n_dim: keep.len(),
            n_div: self.n_div + drop.len(),
            eqs: self.eqs.iter().map(map).collect(),
            ineqs: self.ineqs.iter().map(map).collect(),
        }
    }

    /// Exact integer emptiness. `Yes` / `No` are definitive; `Unknown`
    /// means the work cap or checked arithmetic gave out.
    #[must_use]
    pub fn is_empty(&self) -> Verdict {
        Verdict::from_opt(omega::empty(&self.eqs, &self.ineqs, self.n_vars()))
    }

    /// Extracts an integer point (values of the visible dims) if the set
    /// is non-empty and the bounded search finds one.
    #[must_use]
    pub fn sample(&self) -> Option<Vec<i64>> {
        sample::sample(self)
    }

    pub(crate) fn eqs(&self) -> &[Row] {
        &self.eqs
    }

    pub(crate) fn ineqs(&self) -> &[Row] {
        &self.ineqs
    }
}

fn remap_row(
    row: &Row,
    src_dim: usize,
    src_div: usize,
    dst_dim: usize,
    div_shift: usize,
    dst_vars: usize,
) -> Row {
    debug_assert_eq!(src_dim, dst_dim);
    let mut out = vec![0; dst_vars + 1];
    out[..src_dim].copy_from_slice(&row[..src_dim]);
    for d in 0..src_div {
        out[dst_dim + div_shift + d] = row[src_dim + d];
    }
    out[dst_vars] = row[src_dim + src_div];
    out
}

/// A finite union of basic sets over a common dimension space.
#[derive(Clone, Debug)]
pub struct Set {
    n_dim: usize,
    parts: Vec<BasicSet>,
}

/// Unions with more parts than this are truncated to "unknown" answers
/// rather than risking exponential blowup in intersections.
const MAX_PARTS: usize = 64;

impl Set {
    /// The empty set over `n_dim` dimensions.
    #[must_use]
    pub fn empty(n_dim: usize) -> Self {
        Set {
            n_dim,
            parts: Vec::new(),
        }
    }

    /// A set with a single conjunction.
    #[must_use]
    pub fn from_basic(bs: BasicSet) -> Self {
        Set {
            n_dim: bs.n_dim,
            parts: vec![bs],
        }
    }

    /// Number of visible dimensions.
    #[must_use]
    pub fn n_dims(&self) -> usize {
        self.n_dim
    }

    /// The disjuncts.
    #[must_use]
    pub fn parts(&self) -> &[BasicSet] {
        &self.parts
    }

    /// Adds one disjunct.
    pub fn push(&mut self, bs: BasicSet) {
        assert_eq!(bs.n_dim, self.n_dim, "dimension mismatch");
        self.parts.push(bs);
    }

    /// Union (disjunction) of two sets. Returns `None` past the part cap.
    #[must_use]
    pub fn union(mut self, other: Set) -> Option<Set> {
        assert_eq!(self.n_dim, other.n_dim, "dimension mismatch");
        self.parts.extend(other.parts);
        (self.parts.len() <= MAX_PARTS).then_some(self)
    }

    /// Intersection (pairwise across disjuncts). Returns `None` past the
    /// part cap.
    #[must_use]
    pub fn intersect(&self, other: &Set) -> Option<Set> {
        assert_eq!(self.n_dim, other.n_dim, "dimension mismatch");
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                parts.push(a.intersect(b));
                if parts.len() > MAX_PARTS {
                    return None;
                }
            }
        }
        Some(Set {
            n_dim: self.n_dim,
            parts,
        })
    }

    /// Projects the listed dimensions out of every disjunct.
    #[must_use]
    pub fn project_out_dims(&self, drop: &[usize]) -> Set {
        Set {
            n_dim: self.n_dim - drop.len(),
            parts: self
                .parts
                .iter()
                .map(|p| p.project_out_dims(drop))
                .collect(),
        }
    }

    /// Exact emptiness over the union: empty iff every disjunct is.
    #[must_use]
    pub fn is_empty(&self) -> Verdict {
        let mut unknown = false;
        for p in &self.parts {
            match p.is_empty() {
                Verdict::No => return Verdict::No,
                Verdict::Unknown => unknown = true,
                Verdict::Yes => {}
            }
        }
        if unknown {
            Verdict::Unknown
        } else {
            Verdict::Yes
        }
    }

    /// Samples a point from the first non-empty disjunct.
    #[must_use]
    pub fn sample(&self) -> Option<Vec<i64>> {
        self.parts.iter().find_map(BasicSet::sample)
    }
}

/// An integer relation from `n_in`-dimensional points to
/// `n_out`-dimensional points, stored as a set over `[in..., out...]`.
#[derive(Clone, Debug)]
pub struct Relation {
    n_in: usize,
    n_out: usize,
    set: Set,
}

impl Relation {
    /// Builds a relation from a set whose dims are `[in..., out...]`.
    ///
    /// # Panics
    /// If `set.n_dims() != n_in + n_out`.
    #[must_use]
    pub fn from_set(n_in: usize, n_out: usize, set: Set) -> Self {
        assert_eq!(set.n_dims(), n_in + n_out, "dimension mismatch");
        Relation { n_in, n_out, set }
    }

    /// Input arity.
    #[must_use]
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output arity.
    #[must_use]
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// The underlying graph as a set over `[in..., out...]`.
    #[must_use]
    pub fn as_set(&self) -> &Set {
        &self.set
    }

    /// The identity relation on `n`-dimensional points.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut bs = BasicSet::universe(2 * n);
        for i in 0..n {
            bs.add_eq(&[(i, 1), (n + i, -1)], 0);
        }
        Relation::from_set(n, n, Set::from_basic(bs))
    }

    /// Exact composition `other ∘ self` — applies `self: A→B` first, then
    /// `other: B→C`, giving `A→C`. The mid (`B`) dimensions are
    /// existentially quantified. Returns `None` past the part cap.
    ///
    /// # Panics
    /// If the mid arities disagree (`self.n_out != other.n_in`).
    #[must_use]
    pub fn compose(&self, other: &Relation) -> Option<Relation> {
        assert_eq!(self.n_out, other.n_in, "mid-dimension mismatch");
        let (a, b, c) = (self.n_in, self.n_out, other.n_out);
        // Work space: [A..., C..., B...] with B projected out at the end.
        let mut parts = Vec::new();
        for p in self.set.parts() {
            for q in other.set.parts() {
                // Lift p: dims [A,B] -> [A, C, B]: A stays, B shifts by C.
                let lp = lift(p, &|v| if v < a { v } else { v + c }, a + b + c);
                // Lift q: dims [B,C] -> [A, C, B]: B -> a+c+_, C -> a+_.
                let lq = lift(
                    q,
                    &|v| if v < b { a + c + v } else { a + (v - b) },
                    a + b + c,
                );
                parts.push(lp.intersect(&lq));
                if parts.len() > MAX_PARTS {
                    return None;
                }
            }
        }
        let joined = Set {
            n_dim: a + b + c,
            parts,
        };
        let drop: Vec<usize> = (a + c..a + b + c).collect();
        Some(Relation::from_set(a, c, joined.project_out_dims(&drop)))
    }

    /// The image of `domain` under the relation: `{ y | ∃x ∈ domain: (x,y) ∈ R }`.
    /// Returns `None` past the part cap.
    ///
    /// # Panics
    /// If `domain.n_dims() != self.n_in`.
    #[must_use]
    pub fn apply(&self, domain: &Set) -> Option<Set> {
        assert_eq!(domain.n_dims(), self.n_in, "dimension mismatch");
        let lifted = Set {
            n_dim: self.n_in + self.n_out,
            parts: domain
                .parts()
                .iter()
                .map(|p| lift(p, &|v| v, self.n_in + self.n_out))
                .collect(),
        };
        let joined = self.set.intersect(&lifted)?;
        let drop: Vec<usize> = (0..self.n_in).collect();
        Some(joined.project_out_dims(&drop))
    }

    /// The inverse relation (swaps input and output tuples).
    #[must_use]
    pub fn inverse(&self) -> Relation {
        let (a, b) = (self.n_in, self.n_out);
        let parts = self
            .set
            .parts()
            .iter()
            .map(|p| lift(p, &|v| if v < a { b + v } else { v - a }, a + b))
            .collect();
        Relation::from_set(
            b,
            a,
            Set {
                n_dim: a + b,
                parts,
            },
        )
    }

    /// Restricts the relation to inputs in `domain`. Returns `None` past
    /// the part cap.
    #[must_use]
    pub fn intersect_domain(&self, domain: &Set) -> Option<Relation> {
        assert_eq!(domain.n_dims(), self.n_in, "dimension mismatch");
        let lifted = Set {
            n_dim: self.n_in + self.n_out,
            parts: domain
                .parts()
                .iter()
                .map(|p| lift(p, &|v| v, self.n_in + self.n_out))
                .collect(),
        };
        let set = self.set.intersect(&lifted)?;
        Some(Relation {
            n_in: self.n_in,
            n_out: self.n_out,
            set,
        })
    }

    /// Exact emptiness of the relation's graph.
    #[must_use]
    pub fn is_empty(&self) -> Verdict {
        self.set.is_empty()
    }
}

/// Re-embeds a basic set into a wider dimension space: dim `v` of `bs`
/// becomes dim `map(v)` of the result; divs ride along after the new
/// dims.
fn lift(bs: &BasicSet, map: &dyn Fn(usize) -> usize, new_dim: usize) -> BasicSet {
    let total = new_dim + bs.n_div;
    let conv = |row: &Row| -> Row {
        let mut out = vec![0; total + 1];
        for v in 0..bs.n_dim {
            out[map(v)] = row[v];
        }
        for d in 0..bs.n_div {
            out[new_dim + d] = row[bs.n_dim + d];
        }
        out[total] = row[bs.n_vars()];
        out
    };
    BasicSet {
        n_dim: new_dim,
        n_div: bs.n_div,
        eqs: bs.eqs.iter().map(conv).collect(),
        ineqs: bs.ineqs.iter().map(conv).collect(),
    }
}

/// Floor division on checked `i128` (helper shared by the submodules).
pub(crate) fn div_floor(a: Coeff, b: Coeff) -> Coeff {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// Ceiling division on checked `i128`.
pub(crate) fn div_ceil(a: Coeff, b: Coeff) -> Coeff {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

pub(crate) fn gcd(a: Coeff, b: Coeff) -> Coeff {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_and_point() {
        let mut bs = BasicSet::universe(2);
        assert_eq!(bs.is_empty(), Verdict::No);
        bs.fix(0, 3);
        bs.fix(1, -7);
        assert_eq!(bs.is_empty(), Verdict::No);
        assert_eq!(bs.sample(), Some(vec![3, -7]));
        bs.add_ge(&[(0, 1)], -4); // 3 - 4 >= 0: false
        assert_eq!(bs.is_empty(), Verdict::Yes);
    }

    #[test]
    fn box_bounds() {
        let mut bs = BasicSet::universe(1);
        bs.bound(0, 0, 10);
        bs.add_ge(&[(0, 1)], -9); // v >= 9
        assert_eq!(bs.is_empty(), Verdict::No);
        assert_eq!(bs.sample(), Some(vec![9]));
        let mut bs2 = BasicSet::universe(1);
        bs2.bound(0, 0, 10);
        bs2.add_ge(&[(0, 1)], -10); // v >= 10, contradicts v < 10
        assert_eq!(bs2.is_empty(), Verdict::Yes);
    }

    #[test]
    fn compose_identity() {
        let id = Relation::identity(3);
        let id2 = id.compose(&id).expect("within caps");
        assert_eq!(id2.n_in(), 3);
        assert_eq!(id2.n_out(), 3);
        // (x - y) must be forced to zero: intersect with x0=5 and y0=6.
        let mut probe = BasicSet::universe(6);
        probe.fix(0, 5);
        probe.fix(3, 6);
        let joined = id2
            .as_set()
            .intersect(&Set::from_basic(probe))
            .expect("caps");
        assert_eq!(joined.is_empty(), Verdict::Yes);
    }
}
