//! Pass 2: transformation legality for layout plans.
//!
//! Replays the primitive chain of every assigned layout, conversion and
//! embedding against the logical shape of its tensor, mapping each
//! [`LayoutError`] onto a stable diagnostic code, and checks propagation
//! consistency across graph edges:
//!
//! * every layout's logical shape must match its tensor's shape,
//! * every conversion must target a consumer that actually reads the
//!   converted tensor,
//! * `store_at` embeddings must pair parameter tensors whose shapes
//!   agree (guest = host minus the host dimension), with an identity
//!   guest layout and a host layout that is exactly
//!   `identity + store_at(dim)`.

use alt_error::codes;
use alt_layout::{LayoutError, LayoutPlan, LayoutPrim};
use alt_tensor::{Graph, TensorKind};

use crate::Diagnostic;

/// Maps a layout-primitive failure onto its stable diagnostic code.
pub fn code_for(e: &LayoutError) -> &'static str {
    match e {
        LayoutError::BadDim { .. } => codes::V016_UNKNOWN_AXIS,
        LayoutError::BadFactors { .. } => codes::V008_SPLIT_NONDIVISIBLE,
        LayoutError::BadPermutation(_) => codes::V013_PERM_INVALID,
        LayoutError::BadFuseRange { .. } => codes::V011_FUSE_BAD_RANGE,
        LayoutError::BadUnfold { .. } => codes::V012_UNFOLD_BAD_FACTORS,
        LayoutError::BadPad => codes::V015_NEGATIVE_PAD,
        LayoutError::BadSwizzle { .. } => codes::V017_SWIZZLE_INVALID,
        LayoutError::BadMorton { .. } => codes::V018_MORTON_INVALID,
        LayoutError::BadBlockDiag { .. } => codes::V019_BLOCKDIAG_INVALID,
        _ => codes::V014_PROPAGATION_MISMATCH,
    }
}

fn check_layout(
    what: &str,
    layout: &alt_layout::Layout,
    tensor_shape: &alt_tensor::Shape,
    diags: &mut Vec<Diagnostic>,
) {
    if layout.logical_shape() != tensor_shape {
        diags.push(Diagnostic::new(
            codes::V014_PROPAGATION_MISMATCH,
            what,
            format!(
                "layout logical shape {} does not match tensor shape {}",
                layout.logical_shape(),
                tensor_shape
            ),
        ));
        return;
    }
    if let Err(e) = layout.revalidate() {
        diags.push(Diagnostic::new(
            code_for(&e),
            what,
            format!("illegal primitive chain: {e}"),
        ));
    }
}

/// Runs the legality pass over a layout plan.
pub fn check_plan(graph: &Graph, plan: &LayoutPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    for (&tensor, layout) in plan.assigned() {
        let info = graph.tensor(tensor);
        check_layout(
            &format!("layout of `{}`", info.name),
            layout,
            &info.shape,
            &mut diags,
        );
    }

    for conv in plan.conversions() {
        let info = graph.tensor(conv.tensor);
        let what = format!("conversion of `{}`", info.name);
        if !info.consumers.contains(&conv.consumer) {
            diags.push(Diagnostic::new(
                codes::V014_PROPAGATION_MISMATCH,
                what.clone(),
                format!(
                    "conversion targets op {:?}, which does not read `{}`",
                    conv.consumer, info.name
                ),
            ));
        }
        check_layout(&what, &conv.layout, &info.shape, &mut diags);
    }

    for (&guest, &(host, host_dim)) in plan.embeddings() {
        let gi = graph.tensor(guest);
        let hi = graph.tensor(host);
        let what = format!("store_at `{}` in `{}`", gi.name, hi.name);
        let mut bad = |detail: String| {
            diags.push(Diagnostic::new(
                codes::V014_PROPAGATION_MISMATCH,
                what.clone(),
                detail,
            ));
        };
        if gi.kind != TensorKind::Param || hi.kind != TensorKind::Param {
            bad("store_at requires parameter tensors on both sides".into());
            continue;
        }
        if host_dim >= hi.shape.ndim() {
            bad(format!(
                "host dim {host_dim} out of range for {}-d host",
                hi.shape.ndim()
            ));
            continue;
        }
        // Guest shape must equal the host shape with the host dim removed
        // (the guest occupies the reserved slice along that dim).
        let mut expect: Vec<i64> = hi.shape.dims().to_vec();
        expect.remove(host_dim);
        if gi.shape.dims() != expect.as_slice() {
            bad(format!(
                "guest shape {} does not fill the host slice {:?}",
                gi.shape, expect
            ));
        }
        if !plan.layout_of(graph, guest).is_identity() {
            bad("guest of a store_at embedding must keep the identity layout".into());
        }
        let host_layout = plan.layout_of(graph, host);
        if host_layout.prims() != [LayoutPrim::StoreAtHost { dim: host_dim }] {
            bad(format!(
                "host layout must be exactly `store_at_host({host_dim})`, found {host_layout}"
            ));
        }
    }

    diags
}
