//! Exact legality queries over integer sets.
//!
//! The interval pass is fast but loses correlation (a variable occurring
//! twice, floor division straddling a quotient boundary, predicates it
//! cannot fold). This module re-asks the *same* questions as exact
//! emptiness queries over Presburger sets built with
//! [`alt_layout::relation::SetBuilder`]:
//!
//! * **Bounds** — "can `idx` escape `[0, extent)` for some iteration
//!   satisfying the statement predicate and enclosing guards?" is the
//!   emptiness of the violation set
//!   `{ i⃗ : pred(i⃗) ∧ (idx(i⃗) < 0 ∨ idx(i⃗) ≥ extent) }`.
//! * **Races** — "do two distinct iterations of a `@par` axis write the
//!   same slot?" is the emptiness of a two-copy set where outer loop
//!   variables are shared, the parallel and inner variables are
//!   duplicated, and every store coordinate is equated across copies.
//!
//! A non-empty violation set comes with a sampled *witness* — a concrete
//! loop-index assignment demonstrating the escape — which `altc verify
//! --explain` prints. An empty set is proof, and when the interval pass
//! would have (conservatively) rejected, the verdict is recorded as a
//! recovered rejection in [`VerifyStats`]. `Unknown` (budget or an
//! unsupported expression) defers to the interval verdict, preserving
//! the old behavior exactly.

use std::collections::HashMap;
use std::time::Instant;

use alt_isl::Verdict;
use alt_layout::relation::SetBuilder;
use alt_tensor::expr::{Env, Expr, Var};
use alt_tensor::Cond;

/// Counters for set-engine activity during one verification run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Exact emptiness queries issued to the integer-set engine.
    pub set_queries: u64,
    /// Total wall-clock microseconds spent inside set-engine queries.
    pub set_emptiness_us: u64,
    /// Findings the interval pass would have reported that the set
    /// engine proved unreachable (conservative rejections recovered).
    pub conservative_recovered: u64,
}

impl VerifyStats {
    /// Folds another run's counters into this one.
    pub fn absorb(&mut self, o: &VerifyStats) {
        self.set_queries += o.set_queries;
        self.set_emptiness_us += o.set_emptiness_us;
        self.conservative_recovered += o.conservative_recovered;
    }
}

/// Outcome of one exact query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetVerdict {
    /// The violation set is empty: the property holds for every
    /// iteration.
    Proven,
    /// The violation set is non-empty; `witness` is a printable
    /// counterexample when sampling succeeded within budget.
    Violated { witness: Option<String> },
    /// The query fell outside the engine's fragment or budget; the
    /// caller must keep the interval verdict.
    Unknown,
}

/// Context shared by the bounds queries: live loop extents, the
/// statement predicate (already restricted to the paths where it may be
/// assumed), and enclosing `Select` guards with their polarity
/// (`true` = the guard is known false on this path).
pub struct AccessQuery<'a> {
    /// Loop-variable extents in scope.
    pub env: &'a HashMap<u32, i64>,
    /// Statement validity predicate, when it may be assumed.
    pub pred: Option<&'a Cond>,
    /// `Select` guards along the value path: `(cond, negated)`.
    pub guards: &'a [(Cond, bool)],
}

/// Distinct variables of the query, ordered by id (deterministic dim
/// assignment). Returns `None` when a variable has no known extent.
fn query_vars(idx: &Expr, q: &AccessQuery) -> Option<Vec<(Var, i64)>> {
    let mut vars = Vec::new();
    idx.collect_vars(&mut vars);
    if let Some(p) = q.pred {
        cond_vars(p, &mut vars);
    }
    for (c, _) in q.guards {
        cond_vars(c, &mut vars);
    }
    vars.sort_by_key(Var::id);
    vars.dedup_by_key(|v| v.id());
    vars.into_iter()
        .map(|v| q.env.get(&v.id()).map(|&e| (v, e)))
        .collect()
}

pub(crate) fn cond_vars(c: &Cond, out: &mut Vec<Var>) {
    match c {
        Cond::Ge(a, b) | Cond::Lt(a, b) | Cond::Eq(a, b) => {
            a.collect_vars(out);
            b.collect_vars(out);
        }
        Cond::And(a, b) => {
            cond_vars(a, out);
            cond_vars(b, out);
        }
    }
}

/// Emptiness of one side of a violation (`viol` conjoined with the
/// query's predicate and guards). On `Verdict::No`, also returns a
/// sampled point (var → value), when sampling succeeds.
fn side(vars: &[(Var, i64)], q: &AccessQuery, viol: &Cond) -> (Verdict, Option<Vec<(Var, i64)>>) {
    let spec: Vec<(u32, usize, i64)> = vars
        .iter()
        .enumerate()
        .map(|(d, (v, e))| (v.id(), d, *e))
        .collect();
    let mut b = SetBuilder::new(vars.len(), &spec);
    if let Some(p) = q.pred {
        if !b.add_cond(p, false) {
            return (Verdict::Unknown, None);
        }
    }
    for (c, negated) in q.guards {
        if !b.add_cond(c, *negated) {
            return (Verdict::Unknown, None);
        }
    }
    if !b.add_cond(viol, false) {
        return (Verdict::Unknown, None);
    }
    let set = b.finish();
    match set.is_empty() {
        Verdict::No => {
            let point = set.sample().map(|p| {
                vars.iter()
                    .zip(&p)
                    .map(|((v, _), &val)| (v.clone(), val))
                    .collect()
            });
            (Verdict::No, point)
        }
        v => (v, None),
    }
}

fn format_point(point: &[(Var, i64)]) -> String {
    if point.is_empty() {
        return "(no loop variables)".to_string();
    }
    point
        .iter()
        .map(|(v, val)| format!("{v}={val}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn eval_at(idx: &Expr, point: &[(Var, i64)]) -> i64 {
    let mut env = Env::new();
    for (v, val) in point {
        env.bind(v, *val);
    }
    idx.eval(&env)
}

/// Can `idx` escape `[0, extent)`? Exact where the builder's fragment
/// allows; `Unknown` otherwise.
pub fn check_index_bounds(
    idx: &Expr,
    extent: i64,
    q: &AccessQuery,
    stats: &mut VerifyStats,
) -> SetVerdict {
    check_violation(
        idx,
        &[
            Cond::Lt(idx.clone(), Expr::c(0)),
            Cond::Ge(idx.clone(), Expr::c(extent)),
        ],
        extent,
        q,
        stats,
    )
}

/// Can `idx` reach `limit` or beyond (the `store_at` reserved slot)?
pub fn check_index_below(
    idx: &Expr,
    limit: i64,
    q: &AccessQuery,
    stats: &mut VerifyStats,
) -> SetVerdict {
    check_violation(
        idx,
        &[Cond::Ge(idx.clone(), Expr::c(limit))],
        limit,
        q,
        stats,
    )
}

fn check_violation(
    idx: &Expr,
    sides: &[Cond],
    bound: i64,
    q: &AccessQuery,
    stats: &mut VerifyStats,
) -> SetVerdict {
    let t0 = Instant::now();
    stats.set_queries += 1;
    let verdict = check_violation_inner(idx, sides, bound, q);
    stats.set_emptiness_us += u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    verdict
}

fn check_violation_inner(idx: &Expr, sides: &[Cond], bound: i64, q: &AccessQuery) -> SetVerdict {
    let Some(vars) = query_vars(idx, q) else {
        return SetVerdict::Unknown;
    };
    let mut all_empty = true;
    for viol in sides {
        match side(&vars, q, viol) {
            (Verdict::No, point) => {
                let witness = point.map(|p| {
                    let value = eval_at(idx, &p);
                    format!(
                        "at {} the index evaluates to {value}, outside [0, {bound})",
                        format_point(&p)
                    )
                });
                return SetVerdict::Violated { witness };
            }
            (Verdict::Yes, _) => {}
            (Verdict::Unknown, _) => all_empty = false,
        }
    }
    if all_empty {
        SetVerdict::Proven
    } else {
        SetVerdict::Unknown
    }
}

/// Two-copy race query for one store under a `@par`/`@vec` loop.
///
/// Outer variables (bound outside the parallel loop) are *shared*
/// between the two copies — both iterations run inside the same
/// instance of the enclosing nest. The parallel variable and variables
/// bound inside the body get independent copies, the parallel copies
/// are required to differ, and every store coordinate is equated across
/// copies via an auxiliary pinned dimension.
pub struct RaceQuery<'a> {
    /// Variables bound outside the parallel loop (shared), with extents.
    pub outer: &'a [(Var, i64)],
    /// The parallel variable and its extent.
    pub par: (&'a Var, i64),
    /// Variables bound inside the parallel body, with extents.
    pub inner: &'a [(Var, i64)],
    /// Store coordinates.
    pub indices: &'a [Expr],
    /// Statement validity predicate, if any (assumed in both copies —
    /// an iteration whose predicate is false does not store).
    pub pred: Option<&'a Cond>,
}

/// Is there a pair of distinct parallel iterations writing the same
/// slot? `Proven` = race-free, `Violated` = a concrete colliding pair
/// exists.
pub fn check_par_store(rq: &RaceQuery<'_>, stats: &mut VerifyStats) -> SetVerdict {
    let t0 = Instant::now();
    stats.set_queries += 1;
    let verdict = check_par_store_inner(rq);
    stats.set_emptiness_us += u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    verdict
}

fn check_par_store_inner(rq: &RaceQuery<'_>) -> SetVerdict {
    let o = rq.outer.len();
    let i = rq.inner.len();
    let rank = rq.indices.len();
    // Dims: [outer(shared)..., par₁, par₂, inner₁..., inner₂..., aux...].
    let (par1, par2) = (o, o + 1);
    let inner1 = o + 2;
    let inner2 = inner1 + i;
    let aux = inner2 + i;
    let n_dim = aux + rank;

    let env_for = |par_dim: usize, inner_base: usize| -> Vec<(u32, usize, i64)> {
        let mut spec: Vec<(u32, usize, i64)> = rq
            .outer
            .iter()
            .enumerate()
            .map(|(d, (v, e))| (v.id(), d, *e))
            .collect();
        spec.push((rq.par.0.id(), par_dim, rq.par.1));
        for (k, (v, e)) in rq.inner.iter().enumerate() {
            spec.push((v.id(), inner_base + k, *e));
        }
        spec
    };

    let copy1 = env_for(par1, inner1);
    let copy2 = env_for(par2, inner2);

    let mut b = SetBuilder::new(n_dim, &copy1);
    b.bound_dim(par2, rq.par.1);
    for (k, (_, e)) in rq.inner.iter().enumerate() {
        b.bound_dim(inner2 + k, *e);
    }
    if !b.require_dims_differ(par1, par2) {
        return SetVerdict::Unknown;
    }
    for copy in [&copy1, &copy2] {
        b.set_env(copy);
        if let Some(p) = rq.pred {
            if !b.add_cond(p, false) {
                return SetVerdict::Unknown;
            }
        }
        for (k, idx) in rq.indices.iter().enumerate() {
            if !b.pin(idx, aux + k) {
                return SetVerdict::Unknown;
            }
        }
    }
    let set = b.finish();
    match set.is_empty() {
        Verdict::Yes => SetVerdict::Proven,
        Verdict::Unknown => SetVerdict::Unknown,
        Verdict::No => {
            let witness = set.sample().map(|p| {
                let mut parts = Vec::new();
                parts.push(format!(
                    "{}={} and {}={}",
                    rq.par.0, p[par1], rq.par.0, p[par2]
                ));
                for (d, (v, _)) in rq.outer.iter().enumerate() {
                    parts.push(format!("{v}={}", p[d]));
                }
                let slot: Vec<String> = (0..rank).map(|k| p[aux + k].to_string()).collect();
                format!(
                    "iterations {} collide on slot [{}]",
                    parts.join(", "),
                    slot.join(", ")
                )
            });
            SetVerdict::Violated { witness }
        }
    }
}
