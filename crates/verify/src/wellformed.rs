//! Pass 1: IR well-formedness over lowered programs.
//!
//! Checks, per lowered group:
//!
//! * every loop variable is bound exactly once along any path (a loop
//!   never rebinds a live variable; sibling nests may reuse variables),
//! * loop extents are positive,
//! * no index expression uses a variable outside its binding nest,
//! * every buffer access stays inside the buffer's physical (padded)
//!   extents, proven by affine bound inference refined with the
//!   statement's validity predicate and enclosing `Select` guards,
//! * stores never clobber the reserved `store_at` staging slot of a host
//!   buffer.
//!
//! Out-of-bounds loads on buffers whose layout contains a `pad`
//! primitive are reported as `V007_PAD_UNDERCOVERS` (the pad fails to
//! cover the access); all other escapes are `V004_OOB_READ` /
//! `V005_OOB_WRITE`.
//!
//! Bounds polarity: the interval pass is a fast pre-filter — a range
//! fully inside the extent accepts immediately. Anything else (a
//! definite escape, a straddle, or an unbounded expression) is handed to
//! the exact integer-set engine ([`crate::sets`]): an empty violation
//! set *proves* the access safe (recovering rejections interval
//! arithmetic would have made), a non-empty one rejects with a concrete
//! witness iteration, and an out-of-fragment query falls back to the
//! interval verdict — flag a definite escape or an exact straddle
//! (affine over distinct variables), accept otherwise.

use std::collections::{HashMap, HashSet};

use alt_error::codes;
use alt_layout::{LayoutPlan, LayoutPrim};
use alt_loopir::{BufKind, Program, SExpr, Stmt, StoreMode, TirNode};
use alt_tensor::expr::{Expr, Var};
use alt_tensor::{Cond, Graph};

use crate::interval::{self, Interval, Refinements};
use crate::sets::{self, AccessQuery, SetVerdict, VerifyStats};
use crate::Diagnostic;

/// Per-buffer facts precomputed from the plan.
struct BufFacts {
    /// Buffers whose layout chain contains a `Pad` primitive.
    padded: HashSet<usize>,
    /// `store_at` hosts: buffer index -> (physical dim, reserved slot).
    hosts: HashMap<usize, (usize, i64)>,
}

fn layout_has_pad(prims: &[LayoutPrim]) -> bool {
    prims.iter().any(|p| matches!(p, LayoutPrim::Pad { .. }))
}

fn buf_facts(graph: &Graph, plan: &LayoutPlan, program: &Program) -> BufFacts {
    let mut padded = HashSet::new();
    for (k, decl) in program.buffers.iter().enumerate() {
        let has_pad = match decl.kind {
            BufKind::Tensor(t) => layout_has_pad(plan.layout_of(graph, t).prims()),
            // A converted copy may serve several consumers with different
            // layouts; "any conversion of this tensor pads" is enough for
            // diagnostic classification.
            BufKind::Converted(t) => plan
                .conversions()
                .iter()
                .any(|c| c.tensor == t && layout_has_pad(c.layout.prims())),
        };
        if has_pad {
            padded.insert(k);
        }
    }
    let mut hosts = HashMap::new();
    for (_, &(host, host_dim)) in plan.embeddings() {
        let Some(buf) = program.buffer_for_tensor(host) else {
            continue;
        };
        // `store_at` only applies to identity layouts, so the reserved
        // slot sits at physical position `host_dim` with index equal to
        // the original extent. Anything more exotic is skipped here (and
        // flagged by the plan legality pass).
        let layout = plan.layout_of(graph, host);
        if layout.prims() == [LayoutPrim::StoreAtHost { dim: host_dim }] {
            let reserved = graph.tensor(host).shape.dim(host_dim);
            hosts.insert(buf.0, (host_dim, reserved));
        }
    }
    BufFacts { padded, hosts }
}

struct Walker<'a> {
    program: &'a Program,
    facts: BufFacts,
    group: String,
    /// Live bindings: variable id -> loop extent.
    env: HashMap<u32, i64>,
    diags: Vec<Diagnostic>,
    stats: VerifyStats,
}

/// True when interval arithmetic is exact for `e`: every variable occurs
/// at most once and no flooring/extremum operator can lose correlation.
/// For such expressions a straddling index range proves some iteration
/// really escapes; for anything else a straddle may be an artifact of
/// lost correlation and the verifier accepts.
fn interval_exact(e: &Expr) -> bool {
    fn ops_ok(e: &Expr) -> bool {
        match e {
            Expr::Const(_) | Expr::Var(_) => true,
            Expr::Bin(op, a, b) => {
                use alt_tensor::expr::BinOp;
                !matches!(op, BinOp::FloorDiv | BinOp::Mod | BinOp::Min | BinOp::Max)
                    && ops_ok(a)
                    && ops_ok(b)
            }
        }
    }
    let mut vars = Vec::new();
    e.collect_vars(&mut vars);
    let mut ids: Vec<u32> = vars.iter().map(Var::id).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len() == vars.len() && ops_ok(e)
}

/// Collects every variable referenced by a condition.
fn cond_vars(c: &Cond, out: &mut Vec<Var>) {
    match c {
        Cond::Ge(a, b) | Cond::Lt(a, b) | Cond::Eq(a, b) => {
            a.collect_vars(out);
            b.collect_vars(out);
        }
        Cond::And(a, b) => {
            cond_vars(a, out);
            cond_vars(b, out);
        }
    }
}

/// Collects every variable referenced by a value expression.
fn sexpr_vars(e: &SExpr, out: &mut Vec<Var>) {
    match e {
        SExpr::Imm(_) => {}
        SExpr::Load { indices, .. } => {
            for i in indices {
                i.collect_vars(out);
            }
        }
        SExpr::Bin(_, a, b) => {
            sexpr_vars(a, out);
            sexpr_vars(b, out);
        }
        SExpr::Unary(_, a) => sexpr_vars(a, out),
        SExpr::Select { cond, then_, else_ } => {
            cond_vars(cond, out);
            sexpr_vars(then_, out);
            sexpr_vars(else_, out);
        }
    }
}

impl Walker<'_> {
    fn diag(&mut self, code: &'static str, detail: String) {
        self.diags
            .push(Diagnostic::new(code, self.group.clone(), detail));
    }

    fn diag_witnessed(&mut self, code: &'static str, detail: String, witness: Option<String>) {
        self.diags
            .push(Diagnostic::new(code, self.group.clone(), detail).with_witness(witness));
    }

    fn walk(&mut self, nodes: &[TirNode]) {
        for node in nodes {
            match node {
                TirNode::Loop {
                    var, extent, body, ..
                } => {
                    if *extent <= 0 {
                        self.diag(
                            codes::V003_NONPOSITIVE_EXTENT,
                            format!("loop `{var}` has extent {extent}"),
                        );
                    }
                    if self.env.contains_key(&var.id()) {
                        self.diag(
                            codes::V001_REBOUND_AXIS,
                            format!("loop rebinds `{var}` while it is already bound"),
                        );
                        // Keep the outer binding: walking the body with a
                        // corrupted scope would cascade spurious reports.
                        self.walk(body);
                        continue;
                    }
                    self.env.insert(var.id(), (*extent).max(1));
                    self.walk(body);
                    self.env.remove(&var.id());
                }
                TirNode::Stmt(s) => self.check_stmt(s),
            }
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        // Unbound-variable scan first: bound inference needs every
        // variable in scope.
        let mut vars = Vec::new();
        for i in &s.indices {
            i.collect_vars(&mut vars);
        }
        if let Some(p) = &s.pred {
            cond_vars(p, &mut vars);
        }
        sexpr_vars(&s.value, &mut vars);
        let mut reported = HashSet::new();
        let mut unbound = false;
        for v in &vars {
            if !self.env.contains_key(&v.id()) {
                unbound = true;
                if reported.insert(v.id()) {
                    self.diag(
                        codes::V002_UNBOUND_AXIS,
                        format!("statement uses `{v}` outside any enclosing loop"),
                    );
                }
            }
        }
        if unbound {
            return;
        }

        let base = Refinements::new();
        let mut pred_map = Refinements::new();
        if let Some(p) = &s.pred {
            interval::refine_from_cond(p, &self.env, &mut pred_map);
        }

        // Store indices. A predicated `Assign` still writes 0.0 to the
        // invalid slot, so its destination must be in bounds without
        // assuming the predicate; accumulating stores are skipped when
        // the predicate is false and may assume it.
        let (store_map, store_pred) = if s.mode == StoreMode::Assign {
            (&base, None)
        } else {
            (&pred_map, s.pred.as_ref())
        };
        self.check_access(s.buf.0, &s.indices, store_map, false, store_pred, &[]);
        self.check_host_slot(s, store_map, store_pred);

        // The value expression is only evaluated when the predicate
        // holds.
        let mut guards = Vec::new();
        self.walk_value(&s.value, &pred_map, s.pred.as_ref(), &mut guards);
    }

    /// Flags stores that can touch a `store_at` host's reserved slot.
    fn check_host_slot(&mut self, s: &Stmt, map: &Refinements, pred: Option<&Cond>) {
        let Some(&(dim, reserved)) = self.facts.hosts.get(&s.buf.0) else {
            return;
        };
        let Some(idx) = s.indices.get(dim) else {
            return;
        };
        let iv = interval::eval(idx, &self.env, map);
        // Fast path: the interval proves the reserved slot untouched.
        if iv.is_some_and(|iv| iv.is_empty() || iv.hi < reserved) {
            return;
        }
        let interval_flags = iv.is_some();
        let q = AccessQuery {
            env: &self.env,
            pred,
            guards: &[],
        };
        let name = &self.program.buffer(s.buf).name;
        let detail = |iv: Option<Interval>| match iv {
            Some(iv) => format!(
                "store to `{name}` can reach reserved slot {reserved} of dim {dim} \
                 (index range [{}, {}])",
                iv.lo, iv.hi
            ),
            None => format!("store to `{name}` can reach reserved slot {reserved} of dim {dim}"),
        };
        match sets::check_index_below(idx, reserved, &q, &mut self.stats) {
            SetVerdict::Proven => {
                if interval_flags {
                    self.stats.conservative_recovered += 1;
                }
            }
            SetVerdict::Violated { witness } => {
                self.diag_witnessed(codes::V006_STORE_AT_CLOBBERED, detail(iv), witness);
            }
            SetVerdict::Unknown => {
                if interval_flags {
                    self.diag(codes::V006_STORE_AT_CLOBBERED, detail(iv));
                }
            }
        }
    }

    fn walk_value(
        &mut self,
        e: &SExpr,
        map: &Refinements,
        pred: Option<&Cond>,
        guards: &mut Vec<(Cond, bool)>,
    ) {
        match e {
            SExpr::Imm(_) => {}
            SExpr::Load { buf, indices } => {
                self.check_access(buf.0, indices, map, true, pred, guards);
            }
            SExpr::Bin(_, a, b) => {
                self.walk_value(a, map, pred, guards);
                self.walk_value(b, map, pred, guards);
            }
            SExpr::Unary(_, a) => self.walk_value(a, map, pred, guards),
            SExpr::Select { cond, then_, else_ } => {
                // Only the taken branch evaluates, so each branch may
                // assume its side of the condition.
                let mut tm = map.clone();
                interval::refine_from_cond(cond, &self.env, &mut tm);
                guards.push((cond.clone(), false));
                self.walk_value(then_, &tm, pred, guards);
                guards.pop();
                let mut em = map.clone();
                interval::refine_from_negation(cond, &self.env, &mut em);
                guards.push((cond.clone(), true));
                self.walk_value(else_, &em, pred, guards);
                guards.pop();
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_access(
        &mut self,
        buf: usize,
        indices: &[Expr],
        map: &Refinements,
        read: bool,
        pred: Option<&Cond>,
        guards: &[(Cond, bool)],
    ) {
        let decl = &self.program.buffers[buf];
        let (oob_code, what) = if read {
            if self.facts.padded.contains(&buf) {
                (codes::V007_PAD_UNDERCOVERS, "load")
            } else {
                (codes::V004_OOB_READ, "load")
            }
        } else {
            (codes::V005_OOB_WRITE, "store")
        };
        if indices.len() != decl.shape.ndim() {
            self.diag(
                oob_code,
                format!(
                    "{what} of `{}` has rank {} but the buffer has rank {}",
                    decl.name,
                    indices.len(),
                    decl.shape.ndim()
                ),
            );
            return;
        }
        for (k, idx) in indices.iter().enumerate() {
            let extent = decl.shape.dim(k);
            let iv = interval::eval(idx, &self.env, map);
            // Fast path: the interval proves the access in bounds; no
            // set query is spent.
            if iv.is_some_and(|iv| iv.within(extent)) {
                continue;
            }
            // The interval verdict for everything else: a range entirely
            // outside `[0, extent)` is out of bounds no matter how
            // imprecise the analysis; a *straddling* range only proves
            // an escape when interval arithmetic is exact for this
            // expression; an unbounded expression accepts.
            let interval_rejects =
                iv.is_some_and(|iv| iv.hi < 0 || iv.lo >= extent || interval_exact(idx));
            let detail = |iv: Option<Interval>, name: &str| match iv {
                Some(iv) => format!(
                    "{what} of `{name}` dim {k}: index range [{}, {}] escapes extent {extent}",
                    iv.lo, iv.hi
                ),
                None => {
                    format!("{what} of `{name}` dim {k}: index can escape extent {extent}")
                }
            };
            let q = AccessQuery {
                env: &self.env,
                pred,
                guards,
            };
            match sets::check_index_bounds(idx, extent, &q, &mut self.stats) {
                SetVerdict::Proven => {
                    // The exact engine proved the access safe; without
                    // it the interval verdict would have rejected.
                    if interval_rejects {
                        self.stats.conservative_recovered += 1;
                    }
                }
                SetVerdict::Violated { witness } => {
                    let d = detail(iv, &self.program.buffers[buf].name);
                    self.diag_witnessed(oob_code, d, witness);
                }
                SetVerdict::Unknown => {
                    if interval_rejects {
                        let d = detail(iv, &self.program.buffers[buf].name);
                        self.diag(oob_code, d);
                    }
                }
            }
        }
    }
}

/// Runs the well-formedness pass over every lowered group.
pub fn check_program(graph: &Graph, plan: &LayoutPlan, program: &Program) -> Vec<Diagnostic> {
    let mut stats = VerifyStats::default();
    check_program_with_stats(graph, plan, program, &mut stats)
}

/// [`check_program`], folding set-engine counters into `stats`.
pub fn check_program_with_stats(
    graph: &Graph,
    plan: &LayoutPlan,
    program: &Program,
    stats: &mut VerifyStats,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for group in &program.groups {
        let mut w = Walker {
            program,
            facts: buf_facts(graph, plan, program),
            group: group.label.clone(),
            env: HashMap::new(),
            diags: Vec::new(),
            stats: VerifyStats::default(),
        };
        w.walk(&group.nodes);
        diags.extend(w.diags);
        stats.absorb(&w.stats);
    }
    diags
}

/// Convenience for tests: the interval of one expression under explicit
/// extents.
pub fn bound_expr(e: &Expr, extents: &HashMap<u32, i64>) -> Option<Interval> {
    interval::eval(e, extents, &Refinements::new())
}
