//! Affine bound inference over index expressions.
//!
//! Evaluates an [`Expr`] to a conservative integer interval given the
//! extents of the loop variables in scope, refined by the validity
//! predicates that lowering attaches to statements (pad bounds, unfold
//! overhang, `store_at` slots) and by `Select` conditions inside value
//! expressions.
//!
//! Refinements are keyed by *structural* expression equality: lowering
//! substitutes conditions and bodies through the same rewrites, so the
//! guarded subexpression reappears verbatim inside the guarded access.

use std::collections::HashMap;

use alt_tensor::expr::{BinOp, Expr};
use alt_tensor::Cond;

/// A closed integer interval `[lo, hi]`; `lo > hi` encodes the empty
/// interval (a statically unreachable evaluation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

/// Map from guarded subexpressions to the interval their guard implies.
pub type Refinements = HashMap<Expr, Interval>;

impl Interval {
    /// The interval `[lo, hi]`.
    pub fn new(lo: i64, hi: i64) -> Self {
        Self { lo, hi }
    }

    /// The singleton interval `[v, v]`.
    pub fn point(v: i64) -> Self {
        Self { lo: v, hi: v }
    }

    /// A canonical empty interval.
    pub fn empty() -> Self {
        Self { lo: 1, hi: 0 }
    }

    /// Whether no integer lies in the interval.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Intersection (empty when disjoint).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Whether the interval lies fully inside `[0, extent)`.
    pub fn within(&self, extent: i64) -> bool {
        self.is_empty() || (self.lo >= 0 && self.hi < extent)
    }

    // Endpoint arithmetic must be exact: a saturated endpoint silently
    // narrows the interval (e.g. `i64::MAX + 1` clamping back to
    // `i64::MAX`, then a later subtraction "un-saturating" into a finite
    // — and wrong — bound that downstream `within` checks would trust).
    // Any overflowing corner therefore yields `None` ("cannot bound"),
    // which callers already treat as unknown.

    fn add(&self, o: &Interval) -> Option<Interval> {
        Some(Interval::new(
            self.lo.checked_add(o.lo)?,
            self.hi.checked_add(o.hi)?,
        ))
    }

    fn sub(&self, o: &Interval) -> Option<Interval> {
        Some(Interval::new(
            self.lo.checked_sub(o.hi)?,
            self.hi.checked_sub(o.lo)?,
        ))
    }

    fn mul(&self, o: &Interval) -> Option<Interval> {
        let corners = [
            self.lo.checked_mul(o.lo)?,
            self.lo.checked_mul(o.hi)?,
            self.hi.checked_mul(o.lo)?,
            self.hi.checked_mul(o.hi)?,
        ];
        Some(Interval::new(
            corners.iter().copied().min().unwrap_or(0),
            corners.iter().copied().max().unwrap_or(0),
        ))
    }
}

/// Evaluates `e` to an interval under loop-variable extents `env`
/// (`var id -> extent`, each ranging over `[0, extent)`) and guard
/// `refine`ments. Returns `None` when the expression cannot be bounded
/// (unbound variable, non-constant divisor) — callers must treat `None`
/// as "unknown", never as "in bounds is proven".
pub fn eval(e: &Expr, env: &HashMap<u32, i64>, refine: &Refinements) -> Option<Interval> {
    let raw = match e {
        Expr::Const(v) => Interval::point(*v),
        Expr::Var(v) => {
            let extent = *env.get(&v.id())?;
            Interval::new(0, extent - 1)
        }
        Expr::Bin(op, a, b) => {
            let ia = eval(a, env, refine)?;
            let ib = eval(b, env, refine)?;
            if ia.is_empty() || ib.is_empty() {
                Interval::empty()
            } else {
                match op {
                    BinOp::Add => ia.add(&ib)?,
                    BinOp::Sub => ia.sub(&ib)?,
                    BinOp::Mul => ia.mul(&ib)?,
                    BinOp::FloorDiv => {
                        // Precise only for a constant positive divisor
                        // (the only divisor layout rewriting produces).
                        if ib.lo == ib.hi && ib.lo > 0 {
                            let c = ib.lo;
                            Interval::new(ia.lo.div_euclid(c), ia.hi.div_euclid(c))
                        } else {
                            return None;
                        }
                    }
                    BinOp::Mod => {
                        if ib.lo == ib.hi && ib.lo > 0 {
                            let c = ib.lo;
                            if ia.lo.div_euclid(c) == ia.hi.div_euclid(c) {
                                // The whole range shares one quotient, so
                                // the remainder is monotone across it.
                                Interval::new(ia.lo.rem_euclid(c), ia.hi.rem_euclid(c))
                            } else {
                                Interval::new(0, c - 1)
                            }
                        } else {
                            return None;
                        }
                    }
                    BinOp::Min => Interval::new(ia.lo.min(ib.lo), ia.hi.min(ib.hi)),
                    BinOp::Max => Interval::new(ia.lo.max(ib.lo), ia.hi.max(ib.hi)),
                }
            }
        }
    };
    Some(match refine.get(e) {
        Some(r) => raw.intersect(r),
        None => raw,
    })
}

fn tighten(map: &mut Refinements, key: &Expr, iv: Interval) {
    let entry = map
        .entry(key.clone())
        .or_insert(Interval::new(i64::MIN, i64::MAX));
    *entry = entry.intersect(&iv);
}

/// Folds the constraints of a (true) condition into `map`: on the path
/// where `c` holds, every guarded subexpression is confined to the
/// derived interval.
pub fn refine_from_cond(c: &Cond, env: &HashMap<u32, i64>, map: &mut Refinements) {
    let none = Refinements::new();
    match c {
        Cond::Ge(a, b) => {
            if let Some(ib) = eval(b, env, &none) {
                tighten(map, a, Interval::new(ib.lo, i64::MAX));
            }
        }
        Cond::Lt(a, b) => {
            if let Some(ib) = eval(b, env, &none) {
                tighten(map, a, Interval::new(i64::MIN, ib.hi.saturating_sub(1)));
            }
        }
        Cond::Eq(a, b) => {
            if let Some(ib) = eval(b, env, &none) {
                tighten(map, a, ib);
            }
            if let Some(ia) = eval(a, env, &none) {
                tighten(map, b, ia);
            }
        }
        Cond::And(x, y) => {
            refine_from_cond(x, env, map);
            refine_from_cond(y, env, map);
        }
    }
}

/// Folds the constraints of a *false* condition into `map` (the `else`
/// branch of a `Select`). `¬(a >= b)` is `a < b`; `¬(a < b)` is
/// `a >= b`; negated equalities and conjunctions carry no single-interval
/// information and are skipped.
pub fn refine_from_negation(c: &Cond, env: &HashMap<u32, i64>, map: &mut Refinements) {
    let none = Refinements::new();
    match c {
        Cond::Ge(a, b) => {
            if let Some(ib) = eval(b, env, &none) {
                tighten(map, a, Interval::new(i64::MIN, ib.hi.saturating_sub(1)));
            }
        }
        Cond::Lt(a, b) => {
            if let Some(ib) = eval(b, env, &none) {
                tighten(map, a, Interval::new(ib.lo, i64::MAX));
            }
        }
        Cond::Eq(_, _) | Cond::And(_, _) => {}
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use alt_tensor::VarGen;

    #[test]
    fn var_and_arith_bounds() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let env: HashMap<u32, i64> = [(i.id(), 8)].into();
        let none = Refinements::new();
        let e = Expr::v(&i).mul_c(3).add(&Expr::c(-2));
        assert_eq!(eval(&e, &env, &none), Some(Interval::new(-2, 19)));
    }

    #[test]
    fn div_mod_bounds() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let env: HashMap<u32, i64> = [(i.id(), 12)].into();
        let none = Refinements::new();
        let div = Expr::Bin(BinOp::FloorDiv, Expr::v(&i).into(), Expr::c(4).into());
        assert_eq!(eval(&div, &env, &none), Some(Interval::new(0, 2)));
        let md = Expr::Bin(BinOp::Mod, Expr::v(&i).into(), Expr::c(4).into());
        assert_eq!(eval(&md, &env, &none), Some(Interval::new(0, 3)));
    }

    #[test]
    fn refinement_narrows_guarded_subexpression() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let env: HashMap<u32, i64> = [(i.id(), 10)].into();
        // e = i - 2, guarded by `e >= 0 && e < 6`.
        let e = Expr::v(&i).add(&Expr::c(-2));
        let cond = Cond::Ge(e.clone(), Expr::c(0)).and(Cond::Lt(e.clone(), Expr::c(6)));
        let mut map = Refinements::new();
        refine_from_cond(&cond, &env, &mut map);
        assert_eq!(eval(&e, &env, &map), Some(Interval::new(0, 5)));
        // The refinement applies inside an enclosing expression too.
        let shifted = e.add(&Expr::c(2));
        assert_eq!(eval(&shifted, &env, &map), Some(Interval::new(2, 7)));
    }

    #[test]
    fn negation_flips_the_constraint() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let env: HashMap<u32, i64> = [(i.id(), 10)].into();
        let e = Expr::v(&i);
        let cond = Cond::Lt(e.clone(), Expr::c(4));
        let mut map = Refinements::new();
        refine_from_negation(&cond, &env, &mut map);
        assert_eq!(eval(&e, &env, &map), Some(Interval::new(4, 9)));
    }

    #[test]
    fn overflowing_endpoints_are_unknown_not_saturated() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let env: HashMap<u32, i64> = [(i.id(), 8)].into();
        let none = Refinements::new();
        // (i + i64::MAX) + 1 used to saturate both endpoints to i64::MAX
        // and later arithmetic could "un-saturate" into a finite wrong
        // bound. Any overflowing corner must now surface as `None`.
        let big = Expr::v(&i).add(&Expr::c(i64::MAX));
        assert_eq!(eval(&big.add(&Expr::c(1)), &env, &none), None);
        // The regression shape: saturate up, subtract back down. The old
        // code returned the narrowed (wrong) interval for the chain; it
        // must be unknown. (Raw nodes: the smart constructors fold
        // const-const arithmetic eagerly.)
        let wrapped = Expr::Bin(
            BinOp::Sub,
            Expr::Bin(BinOp::Add, Expr::c(i64::MAX).into(), Expr::c(1).into()).into(),
            Expr::c(1).into(),
        );
        assert_eq!(eval(&wrapped, &env, &none), None);
        // Multiplication overflow too.
        let prod = Expr::v(&i).add(&Expr::c(i64::MAX / 2)).mul_c(3);
        assert_eq!(eval(&prod, &env, &none), None);
        // Sanity: ordinary arithmetic is unaffected.
        let fine = Expr::v(&i).mul_c(4).add(&Expr::c(-3));
        assert_eq!(eval(&fine, &env, &none), Some(Interval::new(-3, 25)));
    }

    #[test]
    fn contradictory_guards_yield_empty() {
        let env = HashMap::new();
        let mut map = Refinements::new();
        let e = Expr::c(3);
        refine_from_cond(&Cond::Ge(e.clone(), Expr::c(10)), &env, &mut map);
        let iv = eval(&e, &env, &map).unwrap();
        assert!(iv.is_empty());
        assert!(iv.within(1), "empty intervals pass every bound vacuously");
    }
}
