//! Pass 3: dependence-based race detection for `@par`/`@vec` loops.
//!
//! For every `Parallel` or `Vectorized` loop the pass flattens each
//! write's store index to a linear form over loop variables (row-major
//! strides of the destination buffer) and inspects the coefficient of
//! the parallel variable:
//!
//! * coefficient zero on an accumulating store (`+=` / `max=`) means the
//!   annotation parallelizes a reduction axis — every iteration folds
//!   into the same location (`V010_PAR_REDUCTION`);
//! * coefficient zero on a plain assignment means all iterations write
//!   the same location — a loop-carried output dependence
//!   (`V009_PAR_RACE`);
//! * a nonzero coefficient moves the write footprint with every
//!   iteration. Lowering produces Horner-form indices over a row-major
//!   flattening, for which distinct iterations provably touch disjoint
//!   slots, so these are accepted.
//!
//! The linear screen is backed by the exact two-copy integer-set query
//! in [`crate::sets`]: a zero coefficient is re-checked before flagging
//! (a statement predicate can confine the store to a single iteration —
//! the set proof recovers the rejection), and expressions that do not
//! flatten to a linear form (floor division or modulo whose residual
//! range spans a quotient boundary, min/max) are handed to the set
//! engine instead of being skipped — a *proved* collision rejects with
//! a concrete witness pair, while an out-of-fragment or over-budget
//! query keeps the old accepting polarity (the accept-implies-bit-exact
//! property is checked against a sequential interpreter, and the
//! seeded-illegal suite pins down the cases this pass must reject).

use std::collections::BTreeMap;
use std::collections::HashMap;

use alt_error::codes;
use alt_loopir::{LoopKind, Program, StoreMode, TirNode};
use alt_tensor::expr::{BinOp, Expr, Var};

use crate::sets::{self, RaceQuery, SetVerdict, VerifyStats};
use crate::Diagnostic;

/// A linear form `c0 + Σ coeff_v · v` over loop variables.
#[derive(Clone, Debug, Default)]
struct LinForm {
    c0: i64,
    terms: BTreeMap<u32, i64>,
}

impl LinForm {
    fn constant(v: i64) -> Self {
        LinForm {
            c0: v,
            terms: BTreeMap::new(),
        }
    }

    fn var(id: u32) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(id, 1);
        LinForm { c0: 0, terms }
    }

    fn add(mut self, o: &LinForm) -> Self {
        self.c0 = self.c0.saturating_add(o.c0);
        for (&v, &c) in &o.terms {
            let e = self.terms.entry(v).or_insert(0);
            *e = e.saturating_add(c);
        }
        self.terms.retain(|_, c| *c != 0);
        self
    }

    fn neg(mut self) -> Self {
        self.c0 = self.c0.saturating_neg();
        for c in self.terms.values_mut() {
            *c = c.saturating_neg();
        }
        self
    }

    fn scale(mut self, k: i64) -> Self {
        self.c0 = self.c0.saturating_mul(k);
        for c in self.terms.values_mut() {
            *c = c.saturating_mul(k);
        }
        self.terms.retain(|_, c| *c != 0);
        self
    }

    /// Value range over `[0, extent)` per variable; `None` if a variable
    /// has no known extent.
    fn range(&self, env: &HashMap<u32, i64>) -> Option<(i64, i64)> {
        let mut lo = self.c0;
        let mut hi = self.c0;
        for (v, &c) in &self.terms {
            let span = env.get(v)?.max(&1) - 1;
            if c >= 0 {
                hi = hi.saturating_add(c.saturating_mul(span));
            } else {
                lo = lo.saturating_add(c.saturating_mul(span));
            }
        }
        Some((lo, hi))
    }
}

/// Flattens `e` to a linear form, splitting constant-divisor `div`/`mod`
/// when the non-divisible residual keeps a stable quotient over its
/// range. Returns `None` (give up) otherwise.
fn linearize(e: &Expr, env: &HashMap<u32, i64>) -> Option<LinForm> {
    match e {
        Expr::Const(v) => Some(LinForm::constant(*v)),
        Expr::Var(v) => Some(LinForm::var(v.id())),
        Expr::Bin(op, a, b) => match op {
            BinOp::Add => Some(linearize(a, env)?.add(&linearize(b, env)?)),
            BinOp::Sub => Some(linearize(a, env)?.add(&linearize(b, env)?.neg())),
            BinOp::Mul => {
                let la = linearize(a, env)?;
                let lb = linearize(b, env)?;
                if lb.terms.is_empty() {
                    Some(la.scale(lb.c0))
                } else if la.terms.is_empty() {
                    Some(lb.scale(la.c0))
                } else {
                    None
                }
            }
            BinOp::FloorDiv | BinOp::Mod => {
                let la = linearize(a, env)?;
                let lb = linearize(b, env)?;
                if !lb.terms.is_empty() || lb.c0 <= 0 {
                    return None;
                }
                let c = lb.c0;
                // Divisible part D and residual R = rest + c0.
                let mut div = LinForm::default();
                let mut rest = LinForm::constant(la.c0);
                for (&v, &coeff) in &la.terms {
                    if coeff % c == 0 {
                        div.terms.insert(v, coeff / c);
                    } else {
                        rest.terms.insert(v, coeff);
                    }
                }
                let (rlo, rhi) = rest.range(env)?;
                let (qlo, qhi) = (rlo.div_euclid(c), rhi.div_euclid(c));
                if qlo != qhi {
                    return None;
                }
                match op {
                    BinOp::FloorDiv => {
                        div.c0 = div.c0.saturating_add(qlo);
                        Some(div)
                    }
                    _ => Some(rest.add(&LinForm::constant(-qlo.saturating_mul(c)))),
                }
            }
            BinOp::Min | BinOp::Max => None,
        },
    }
}

struct RaceWalker<'a> {
    program: &'a Program,
    group: String,
    /// All live bindings, id -> extent (needed for residual ranges).
    env: HashMap<u32, i64>,
    /// The same bindings in nesting order, with the `Var` objects the
    /// set queries and witness formatting need.
    scope: Vec<(Var, i64)>,
    diags: Vec<Diagnostic>,
    stats: VerifyStats,
}

impl RaceWalker<'_> {
    fn walk(&mut self, nodes: &[TirNode]) {
        for node in nodes {
            if let TirNode::Loop {
                var,
                extent,
                kind,
                body,
            } = node
            {
                let fresh = !self.env.contains_key(&var.id());
                if fresh {
                    self.env.insert(var.id(), (*extent).max(1));
                    self.scope.push((var.clone(), (*extent).max(1)));
                }
                if matches!(kind, LoopKind::Parallel | LoopKind::Vectorized) && *extent > 1 {
                    let tag = if *kind == LoopKind::Parallel {
                        "@par"
                    } else {
                        "@vec"
                    };
                    self.check_par_loop(var, tag, body);
                }
                self.walk(body);
                if fresh {
                    self.env.remove(&var.id());
                    self.scope.pop();
                }
            }
        }
    }

    /// Exact two-copy collision query for one store under `par`.
    /// `inner_ext` holds extents of variables bound inside the parallel
    /// body.
    fn race_query(
        &mut self,
        par: &Var,
        s: &alt_loopir::Stmt,
        inner_ext: &HashMap<u32, i64>,
    ) -> SetVerdict {
        let mut used = Vec::new();
        for i in &s.indices {
            i.collect_vars(&mut used);
        }
        if let Some(p) = &s.pred {
            sets::cond_vars(p, &mut used);
        }
        used.sort_by_key(Var::id);
        used.dedup_by_key(|v| v.id());

        let mut outer = Vec::new();
        let mut inner = Vec::new();
        for v in used {
            if v.id() == par.id() {
                // The parallel variable is passed separately.
            } else if let Some((_, e)) = self.scope.iter().find(|(sv, _)| sv.id() == v.id()) {
                let e = *e;
                outer.push((v, e));
            } else if let Some(&e) = inner_ext.get(&v.id()) {
                inner.push((v, e));
            } else {
                return SetVerdict::Unknown; // unbound: pass 1's problem
            }
        }
        let par_extent = self.env.get(&par.id()).copied().unwrap_or(2);
        let rq = RaceQuery {
            outer: &outer,
            par: (par, par_extent),
            inner: &inner,
            indices: &s.indices,
            // A predicated plain assignment still writes (0.0) when the
            // predicate is false, so the predicate cannot be assumed for
            // it; accumulating stores skip entirely and may assume it.
            pred: if s.mode == StoreMode::Assign {
                None
            } else {
                s.pred.as_ref()
            },
        };
        sets::check_par_store(&rq, &mut self.stats)
    }

    /// Checks every write under one parallel loop against its variable.
    fn check_par_loop(&mut self, par: &Var, tag: &str, body: &[TirNode]) {
        let mut stmts = Vec::new();
        collect_stmts(body, &mut stmts);
        let mut inner_ext = HashMap::new();
        collect_loop_extents(body, &mut inner_ext);
        for s in stmts {
            // Flattened store offset under the destination's row-major
            // strides.
            let decl = self.program.buffer(s.buf);
            if s.indices.len() != decl.shape.ndim() {
                continue; // rank mismatch is pass 1's problem
            }
            let mut offset = LinForm::default();
            let mut stride = 1i64;
            let mut ok = true;
            for (k, idx) in s.indices.iter().enumerate().rev() {
                match linearize(idx, &self.env) {
                    Some(l) => offset = offset.add(&l.scale(stride)),
                    None => {
                        ok = false;
                        break;
                    }
                }
                stride = stride.saturating_mul(decl.shape.dim(k).max(1));
            }
            let (code, why) = match s.mode {
                StoreMode::AddAcc | StoreMode::MaxAcc => (
                    codes::V010_PAR_REDUCTION,
                    "accumulates into the same location on every iteration \
                     (reduction axis parallelized)",
                ),
                StoreMode::Assign => (
                    codes::V009_PAR_RACE,
                    "writes the same location on every iteration \
                     (loop-carried output dependence)",
                ),
            };
            if !ok {
                // The linear screen gave up (it used to accept here). A
                // *proved* collision still rejects, with a witness pair;
                // anything less keeps the accepting polarity.
                if let SetVerdict::Violated { witness } = self.race_query(par, s, &inner_ext) {
                    self.diags.push(
                        Diagnostic::new(
                            code,
                            self.group.clone(),
                            format!(
                                "{tag} loop: two iterations store to the same slot of `{}`",
                                decl.name
                            ),
                        )
                        .with_witness(witness),
                    );
                }
                continue;
            }
            let coeff = offset.terms.get(&par.id()).copied().unwrap_or(0);
            if coeff != 0 {
                continue; // footprint moves with every iteration
            }
            // The linear screen says every iteration hits one slot.
            // Re-check exactly: a statement predicate can confine the
            // store to a single parallel iteration.
            let (witness, proven_safe) = match self.race_query(par, s, &inner_ext) {
                SetVerdict::Proven => (None, true),
                SetVerdict::Violated { witness } => (witness, false),
                SetVerdict::Unknown => (None, false),
            };
            if proven_safe {
                self.stats.conservative_recovered += 1;
                continue;
            }
            self.diags.push(
                Diagnostic::new(
                    code,
                    self.group.clone(),
                    format!("{tag} loop: store to `{}` {why}", decl.name),
                )
                .with_witness(witness),
            );
        }
    }
}

fn collect_stmts<'a>(nodes: &'a [TirNode], out: &mut Vec<&'a alt_loopir::Stmt>) {
    for n in nodes {
        match n {
            TirNode::Loop { body, .. } => collect_stmts(body, out),
            TirNode::Stmt(s) => out.push(s),
        }
    }
}

/// Extents of every loop variable bound below a node list (first
/// binding wins; rebinding is pass 1's problem).
fn collect_loop_extents(nodes: &[TirNode], out: &mut HashMap<u32, i64>) {
    for n in nodes {
        if let TirNode::Loop {
            var, extent, body, ..
        } = n
        {
            out.entry(var.id()).or_insert((*extent).max(1));
            collect_loop_extents(body, out);
        }
    }
}

/// Runs the race-detection pass over every lowered group.
pub fn check_program(program: &Program) -> Vec<Diagnostic> {
    let mut stats = VerifyStats::default();
    check_program_with_stats(program, &mut stats)
}

/// [`check_program`], folding set-engine counters into `stats`.
pub fn check_program_with_stats(program: &Program, stats: &mut VerifyStats) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for group in &program.groups {
        let mut w = RaceWalker {
            program,
            group: group.label.clone(),
            env: HashMap::new(),
            scope: Vec::new(),
            diags: Vec::new(),
            stats: VerifyStats::default(),
        };
        w.walk(&group.nodes);
        diags.extend(w.diags);
        stats.absorb(&w.stats);
    }
    diags
}
