//! Static verification for ALT programs (IR well-formedness,
//! transformation legality, race detection).
//!
//! ALT's central claim is that joint layout+loop transformation is
//! semantics-preserving. The interpreter establishes that *dynamically*
//! on sampled inputs; this crate establishes the static side: a
//! three-pass analysis over layout plans and lowered programs that
//! rejects illegal candidates in microseconds, before any simulation
//! spends budget on them.
//!
//! * [`verify_plan`] — transformation legality ([`legality`]): replays
//!   every layout's primitive chain (split divisibility, fuse ranges,
//!   unfold factors, non-negative pads), and checks propagation
//!   consistency across graph edges (shape agreement, dangling
//!   conversions, well-formed `store_at` embeddings).
//! * [`verify_program`] — adds IR well-formedness ([`wellformed`]: loop
//!   vars bound exactly once, positive extents, no axis used outside its
//!   nest, every access within the padded physical extents via affine
//!   bound inference, `store_at` staging slots never clobbered) and
//!   dependence-based race detection ([`race`]: `@par`/`@vec` axes must
//!   not carry loop-carried dependences; parallelized reductions are
//!   flagged).
//!
//! Every finding is a [`Diagnostic`] with a stable code from
//! [`alt_error::codes`]; [`Diagnostic::to_error`] converts one into a
//! typed [`AltError::Verify`] for callers that want `Result` seams. The
//! verifier is deliberately conservative in *both* directions it can
//! afford: bounds it cannot prove are accepted (the accept ⇒ bit-exact
//! property is enforced against the reference interpreter by tests), and
//! rejection paths are pinned down by seeded-illegal mutation tests.

pub mod interval;
pub mod legality;
pub mod race;
pub mod sets;
pub mod wellformed;

use alt_error::AltError;
use alt_layout::LayoutPlan;
use alt_loopir::Program;
use alt_tensor::Graph;

pub use legality::code_for;
pub use sets::VerifyStats;

/// One static-verification finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code from [`alt_error::codes`].
    pub code: &'static str,
    /// Where the finding is anchored (lowered-group label or plan
    /// entity).
    pub group: String,
    /// Human-readable description.
    pub detail: String,
    /// Concrete counterexample from the set engine: a loop-index
    /// assignment demonstrating the violation (`altc verify --explain`
    /// prints it). `None` when the finding comes from the interval pass
    /// alone or witness sampling ran out of budget.
    pub witness: Option<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.code, self.group, self.detail)
    }
}

impl Diagnostic {
    /// A finding without a witness.
    pub fn new(code: &'static str, group: impl Into<String>, detail: impl Into<String>) -> Self {
        Diagnostic {
            code,
            group: group.into(),
            detail: detail.into(),
            witness: None,
        }
    }

    /// Attaches a counterexample witness.
    #[must_use]
    pub fn with_witness(mut self, witness: Option<String>) -> Self {
        self.witness = witness;
        self
    }

    /// Converts the finding into a typed error.
    pub fn to_error(&self) -> AltError {
        AltError::Verify {
            code: self.code,
            detail: format!("{}: {}", self.group, self.detail),
        }
    }
}

/// Deterministic order regardless of pass-internal map iteration.
fn sorted(mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags.sort_by(|a, b| (a.code, &a.group, &a.detail).cmp(&(b.code, &b.group, &b.detail)));
    diags
}

/// Verifies a layout plan (transformation legality + propagation
/// consistency). Returns all findings, deterministically ordered.
pub fn verify_plan(graph: &Graph, plan: &LayoutPlan) -> Vec<Diagnostic> {
    sorted(legality::check_plan(graph, plan))
}

/// Verifies a lowered program together with the plan it was lowered
/// under: plan legality, IR well-formedness and race freedom. Returns
/// all findings, deterministically ordered.
pub fn verify_program(graph: &Graph, plan: &LayoutPlan, program: &Program) -> Vec<Diagnostic> {
    verify_program_with_stats(graph, plan, program).0
}

/// [`verify_program`] plus the set-engine counters of the run (queries
/// issued, microseconds spent, interval rejections recovered).
pub fn verify_program_with_stats(
    graph: &Graph,
    plan: &LayoutPlan,
    program: &Program,
) -> (Vec<Diagnostic>, VerifyStats) {
    let mut stats = VerifyStats::default();
    let mut diags = legality::check_plan(graph, plan);
    diags.extend(wellformed::check_program_with_stats(
        graph, plan, program, &mut stats,
    ));
    diags.extend(race::check_program_with_stats(program, &mut stats));
    (sorted(diags), stats)
}

/// [`verify_program`] as a `Result`: `Err` carries the first (smallest
/// code) finding as a typed [`AltError::Verify`].
pub fn verify_program_strict(
    graph: &Graph,
    plan: &LayoutPlan,
    program: &Program,
) -> Result<(), AltError> {
    match verify_program(graph, plan, program).first() {
        Some(d) => Err(d.to_error()),
        None => Ok(()),
    }
}
