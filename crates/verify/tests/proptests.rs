//! Property tests for the accept side of the verifier.
//!
//! The verifier is allowed to reject conservatively, but an *accepted*
//! program must execute bit-exactly (up to float tolerance) against the
//! reference graph executor — over random layout-primitive sequences,
//! random loop schedules, and tuned winners on every machine profile.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use alt_layout::{presets, Layout, LayoutPlan, LayoutPrim, PropagationMode};
use alt_loopir::{lower, run_program, AxisTiling, GraphSchedule, OpSchedule};
use alt_tensor::exec::{random_bindings, run_graph};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};
use alt_verify::verify_program;

fn divisors(n: i64) -> Vec<i64> {
    (1..=n).filter(|d| n % d == 0).collect()
}

fn pick(divs: &[i64], sel: u64) -> i64 {
    divs[(sel % divs.len() as u64) as usize]
}

/// Random factorization of `n` into >= 2 factors (seeded LCG).
fn factorize(n: i64, rng_val: u64) -> Vec<i64> {
    let mut factors = Vec::new();
    let mut rest = n;
    let mut x = rng_val;
    while rest > 1 && factors.len() < 2 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let divs: Vec<i64> = (1..=rest).filter(|d| rest % d == 0).collect();
        let f = divs[(x >> 33) as usize % divs.len()];
        factors.push(f);
        rest /= f;
    }
    factors.push(rest);
    factors
}

/// Applies up to `n_prims` random primitives (split, reorder, fuse,
/// unfold, pad) to an identity layout — the same generator family as the
/// layout crate's pack/unpack property tests.
fn random_layout(shape: Shape, seed: u64, n_prims: usize) -> Layout {
    let mut layout = Layout::identity(shape);
    let mut x = seed;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    for _ in 0..n_prims {
        let dims = layout.physical_shape();
        let nd = dims.ndim();
        match next() % 5 {
            0 => {
                let candidates: Vec<usize> = (0..nd).filter(|&k| dims.dim(k) > 1).collect();
                if let Some(&k) = candidates.get(next() % candidates.len().max(1)) {
                    let factors = factorize(dims.dim(k), next() as u64);
                    if factors.len() >= 2 {
                        let _ = layout.apply(LayoutPrim::Split { dim: k, factors });
                    }
                }
            }
            1 => {
                let mut perm: Vec<usize> = (0..nd).collect();
                for i in (1..nd).rev() {
                    perm.swap(i, next() % (i + 1));
                }
                let _ = layout.apply(LayoutPrim::Reorder { perm });
            }
            2 => {
                if nd >= 2 {
                    let start = next() % (nd - 1);
                    let count = 2 + next() % (nd - start - 1).max(1);
                    let count = count.min(nd - start);
                    let _ = layout.apply(LayoutPrim::Fuse { start, count });
                }
            }
            3 => {
                let k = next() % nd;
                let d = dims.dim(k);
                if d >= 2 {
                    let tile = 2 + (next() as i64) % (d - 1);
                    let stride = 1 + (next() as i64) % tile;
                    let _ = layout.apply(LayoutPrim::Unfold {
                        dim: k,
                        tile,
                        stride,
                    });
                }
            }
            _ => {
                let k = next() % nd;
                let _ = layout.apply(LayoutPrim::Pad {
                    dim: k,
                    before: (next() % 3) as i64,
                    after: (next() % 3) as i64,
                });
            }
        }
    }
    layout
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random primitive sequences on every GMM tensor plus random loop
    /// annotations: whenever the verifier accepts, execution must match
    /// the reference.
    #[test]
    fn accepted_random_gmm_layouts_are_bit_exact(
        seeds in prop::collection::vec(any::<u64>(), 3),
        n_prims in prop::collection::vec(0usize..4, 3),
        vectorize in any::<bool>(),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (m, k, n) = (6i64, 8i64, 10i64);
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new([m, k]));
        let b = g.add_param("b", Shape::new([k, n]));
        let c = ops::gmm(&mut g, a, b);
        let op = g.tensor(c).producer.unwrap();

        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.assign_output_layout(
            &g,
            op,
            random_layout(g.tensor(c).shape.clone(), seeds[0], n_prims[0]),
        );
        plan.assign_input_layout(
            &g,
            op,
            a,
            random_layout(g.tensor(a).shape.clone(), seeds[1], n_prims[1]),
        );
        plan.assign_input_layout(
            &g,
            op,
            b,
            random_layout(g.tensor(b).shape.clone(), seeds[2], n_prims[2]),
        );

        let mut sched = GraphSchedule::naive();
        sched.set(op, OpSchedule {
            vectorize,
            parallel,
            ..OpSchedule::default()
        });
        let program = lower(&g, &plan, &sched);
        let diags = verify_program(&g, &plan, &program);
        if diags.is_empty() {
            let bindings = random_bindings(&g, seed);
            let reference = run_graph(&g, &bindings);
            let got = run_program(&program, &g, &plan, &bindings);
            let diff = reference[c.0].max_abs_diff(&got[&c]);
            prop_assert!(diff < 1e-3, "accepted but diverges: diff {diff}");
        }
    }

    /// The §5.1 template family the tuner actually explores must never be
    /// rejected (no false positives) and must stay bit-exact.
    #[test]
    fn random_c2d_templates_verify_clean_and_bit_exact(
        sel in prop::collection::vec(any::<u64>(), 6),
        vectorize in any::<bool>(),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (i_ch, o_ch, hw, kk) = (4i64, 8i64, 10i64, 3i64);
        let out_sp = hw - kk + 1;
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, i_ch, hw, hw]));
        let w = g.add_param("w", Shape::new([o_ch, i_ch, kk, kk]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let conv = g.tensor(y).producer.unwrap();

        let ht = pick(&divisors(out_sp), sel[0]);
        let wt = pick(&divisors(out_sp), sel[1]);
        let ot = pick(&divisors(o_ch), sel[2]);
        let it = pick(&divisors(i_ch), sel[3]);
        let wit = pick(&divisors(i_ch), sel[4]);
        let wot = pick(&divisors(o_ch), sel[5]);

        let mut plan = LayoutPlan::new(PropagationMode::Full);
        plan.assign_output_layout(
            &g,
            conv,
            presets::conv_output_tiled_nd(g.tensor(y).shape.clone(), &[ht, wt], ot).unwrap(),
        );
        plan.assign_input_layout(
            &g,
            conv,
            x,
            presets::conv_input_tiled_nd(
                g.tensor(x).shape.clone(),
                it,
                &[ht, wt],
                &[1, 1],
                &[kk, kk],
            )
            .unwrap(),
        );
        plan.assign_input_layout(
            &g,
            conv,
            w,
            presets::conv_weight_tiled_nd(g.tensor(w).shape.clone(), wit, wot).unwrap(),
        );

        let mut sched = GraphSchedule::naive();
        sched.set(conv, OpSchedule {
            vectorize,
            parallel,
            ..OpSchedule::default()
        });
        let program = lower(&g, &plan, &sched);
        let diags = verify_program(&g, &plan, &program);
        prop_assert!(
            diags.is_empty(),
            "template candidate falsely rejected: {:?} (ht={ht} wt={wt} ot={ot} it={it})",
            diags
        );
        let bindings = random_bindings(&g, seed);
        let reference = run_graph(&g, &bindings);
        let got = run_program(&program, &g, &plan, &bindings);
        let diff = reference[y.0].max_abs_diff(&got[&y]);
        prop_assert!(diff < 1e-3, "diff {diff}");
    }

    /// Random loop schedules (tilings + annotations) on the identity
    /// layout verify clean and stay bit-exact.
    #[test]
    fn random_loop_schedules_verify_clean(
        sel in prop::collection::vec(any::<u64>(), 7),
        vectorize in any::<bool>(),
        unroll in any::<bool>(),
        parallel in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let conv = g.tensor(y).producer.unwrap();
        let plan = LayoutPlan::new(PropagationMode::Full);
        let phys = plan.layout_of(&g, y).physical_shape();

        let spatial: Vec<AxisTiling> = (0..phys.ndim())
            .map(|d| {
                let t = pick(&divisors(phys.dim(d)), sel[d]);
                if t > 1 { AxisTiling::one(t) } else { AxisTiling::none() }
            })
            .collect();
        let reduce_ext = [4i64, 3, 3];
        let reduce: Vec<AxisTiling> = (0..3)
            .map(|d| {
                let t = pick(&divisors(reduce_ext[d]), sel[4 + d]);
                if t > 1 { AxisTiling::one(t) } else { AxisTiling::none() }
            })
            .collect();
        let mut sched = GraphSchedule::naive();
        sched.set(
            conv,
            OpSchedule {
                spatial,
                reduce,
                vectorize,
                unroll,
                parallel,
                fuse_into_producer: false,
            },
        );

        let program = lower(&g, &plan, &sched);
        let diags = verify_program(&g, &plan, &program);
        prop_assert!(diags.is_empty(), "schedule falsely rejected: {diags:?}");
        let bindings = random_bindings(&g, seed);
        let reference = run_graph(&g, &bindings);
        let got = run_program(&program, &g, &plan, &bindings);
        let diff = reference[y.0].max_abs_diff(&got[&y]);
        prop_assert!(diff < 1e-3, "diff {diff}");
    }
}

/// Tuned winners on every machine profile verify clean and execute
/// bit-exactly — the acceptance property across >= 3 profiles.
#[test]
fn tuned_winners_verify_clean_on_all_profiles() {
    use alt_autotune::tune_graph;
    use alt_autotune::tuner::TuneConfig;

    for profile in alt_sim::all_profiles() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 4, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let cfg = TuneConfig {
            joint_budget: 8,
            loop_budget: 8,
            free_input_layouts: true,
            seed: 11,
            ..TuneConfig::default()
        };
        let r = tune_graph(&g, profile, cfg);
        let program = lower(&g, &r.plan, &r.sched);
        let diags = verify_program(&g, &r.plan, &program);
        assert!(
            diags.is_empty(),
            "winner on {} rejected: {diags:?}",
            profile.name
        );
        let bindings = random_bindings(&g, 5);
        let reference = run_graph(&g, &bindings);
        let got = run_program(&program, &g, &r.plan, &bindings);
        let diff = reference[y.0].max_abs_diff(&got[&y]);
        assert!(diff < 1e-3, "diff {diff} on {}", profile.name);
    }
}
