//! Edge-case coverage for primitive interactions the paper's templates
//! combine: pad-then-fuse, unfold of a padded axis, and `store_at`
//! staging read inside a parallel loop. Each case must verify clean and
//! execute bit-exactly; the `store_at` case also pins down the
//! reserved-slot clobber diagnostic.

#![allow(clippy::unwrap_used)]

use alt_error::codes;
use alt_layout::{Layout, LayoutPlan, LayoutPrim, PropagationMode};
use alt_loopir::{lower, run_program, GraphSchedule, OpSchedule, SExpr, Stmt, StoreMode, TirNode};
use alt_tensor::exec::{random_bindings, run_graph};
use alt_tensor::expr::Expr;
use alt_tensor::{ops, Graph, Shape, TensorId};
use alt_verify::verify_program;

fn gmm_graph() -> (Graph, TensorId, TensorId) {
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([6, 8]));
    let b = g.add_param("b", Shape::new([8, 10]));
    let c = ops::gmm(&mut g, a, b);
    (g, b, c)
}

fn check_clean_and_bit_exact(g: &Graph, plan: &LayoutPlan, sched: &GraphSchedule, out: TensorId) {
    let program = lower(g, plan, sched);
    let diags = verify_program(g, plan, &program);
    assert!(diags.is_empty(), "falsely rejected: {diags:?}");
    let bindings = random_bindings(g, 17);
    let reference = run_graph(g, &bindings);
    let got = run_program(&program, g, plan, &bindings);
    let diff = reference[out.0].max_abs_diff(&got[&out]);
    assert!(diff < 1e-3, "diff {diff}");
}

#[test]
fn pad_then_fuse_verifies_and_matches() {
    let (g, b, c) = gmm_graph();
    let layout = Layout::identity(g.tensor(b).shape.clone())
        .with(LayoutPrim::Pad {
            dim: 0,
            before: 0,
            after: 2,
        })
        .unwrap()
        .with(LayoutPrim::Fuse { start: 0, count: 2 })
        .unwrap();
    let op = g.tensor(b).consumers[0];
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_input_layout(&g, op, b, layout);
    check_clean_and_bit_exact(&g, &plan, &GraphSchedule::naive(), c);
}

#[test]
fn unfold_of_padded_axis_verifies_and_matches() {
    // Pad K from 8 to 10, then unfold the padded axis into overlapping
    // windows (tile 4, stride 3): duplicated + zero-filled slots, the
    // worst case for both the bounds and the footprint analysis.
    let (g, b, c) = gmm_graph();
    let layout = Layout::identity(g.tensor(b).shape.clone())
        .with(LayoutPrim::Pad {
            dim: 0,
            before: 0,
            after: 2,
        })
        .unwrap()
        .with(LayoutPrim::Unfold {
            dim: 0,
            tile: 4,
            stride: 3,
        })
        .unwrap();
    let op = g.tensor(b).consumers[0];
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.assign_input_layout(&g, op, b, layout);
    check_clean_and_bit_exact(&g, &plan, &GraphSchedule::naive(), c);
}

/// The paper's bias-in-weight `store_at` example with the consumer nest
/// parallelized: staging reads land inside an `@par` loop.
fn store_at_setup() -> (Graph, TensorId, TensorId, LayoutPlan, GraphSchedule) {
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([6, 10]));
    let w = g.add_param("w", Shape::new([10, 8]));
    let c = ops::gmm(&mut g, a, w);
    let b = g.add_param("b", Shape::new([8]));
    let out = ops::bias_add(&mut g, c, b, 1);
    let gmm_op = g.tensor(c).producer.unwrap();
    let bias_op = g.tensor(out).producer.unwrap();

    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.store_at(&g, w, b, 0).expect("store_at valid");
    let mut sched = GraphSchedule::naive();
    sched.set(
        gmm_op,
        OpSchedule {
            parallel: true,
            ..OpSchedule::default()
        },
    );
    sched.set(
        bias_op,
        OpSchedule {
            fuse_into_producer: true,
            parallel: true,
            ..OpSchedule::default()
        },
    );
    (g, w, out, plan, sched)
}

#[test]
fn store_at_inside_parallel_loop_verifies_and_matches() {
    let (g, _, out, plan, sched) = store_at_setup();
    check_clean_and_bit_exact(&g, &plan, &sched, out);
}

#[test]
fn store_to_reserved_host_slot_rejected() {
    let (g, w, _, plan, sched) = store_at_setup();
    let mut program = lower(&g, &plan, &sched);
    let host = program.buffer_for_tensor(w).unwrap();
    // The host physically reserves row 10 for the embedded bias; a store
    // that reaches it clobbers the staged guest.
    assert_eq!(program.buffer(host).shape.dim(0), 11);
    program.groups[0].nodes.push(TirNode::Stmt(Stmt {
        buf: host,
        indices: vec![Expr::c(10), Expr::c(0)],
        value: SExpr::Imm(0.0),
        mode: StoreMode::Assign,
        pred: None,
    }));
    let diags = verify_program(&g, &plan, &program);
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::V006_STORE_AT_CLOBBERED),
        "{diags:?}"
    );
}
