//! Seeded-illegal mutation tests: every rejection path of the verifier
//! is pinned down by taking a known-legal lowered program, corrupting it
//! in one specific way, and asserting the expected diagnostic code.

#![allow(clippy::unwrap_used)]

use alt_error::codes;
use alt_layout::{Layout, LayoutPlan, LayoutPrim, PropagationMode};
use alt_loopir::{
    lower, GraphSchedule, LoopKind, OpSchedule, Program, SExpr, Stmt, StoreMode, TirNode,
};
use alt_tensor::expr::Expr;
use alt_tensor::{ops, Graph, Shape, TensorId};
use alt_verify::{verify_program, verify_program_strict, Diagnostic};

/// Small GMM with identity layouts and the naive schedule.
fn legal_gmm(parallel: bool) -> (Graph, TensorId, TensorId, LayoutPlan, GraphSchedule) {
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([6, 8]));
    let b = g.add_param("b", Shape::new([8, 10]));
    let c = ops::gmm(&mut g, a, b);
    let op = g.tensor(c).producer.unwrap();
    let plan = LayoutPlan::new(PropagationMode::Full);
    let mut sched = GraphSchedule::naive();
    sched.set(
        op,
        OpSchedule {
            parallel,
            ..OpSchedule::default()
        },
    );
    (g, b, c, plan, sched)
}

fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

/// Depth-first search for the first statement matching `pred`.
fn find_stmt_mut<'a>(
    nodes: &'a mut [TirNode],
    pred: &impl Fn(&Stmt) -> bool,
) -> Option<&'a mut Stmt> {
    for node in nodes {
        match node {
            TirNode::Stmt(s) => {
                if pred(s) {
                    return Some(s);
                }
            }
            TirNode::Loop { body, .. } => {
                if let Some(s) = find_stmt_mut(body, pred) {
                    return Some(s);
                }
            }
        }
    }
    None
}

/// Clones the first statement matching `pred`.
fn find_stmt(nodes: &[TirNode], pred: &impl Fn(&Stmt) -> bool) -> Option<Stmt> {
    for node in nodes {
        match node {
            TirNode::Stmt(s) => {
                if pred(s) {
                    return Some(s.clone());
                }
            }
            TirNode::Loop { body, .. } => {
                if let Some(s) = find_stmt(body, pred) {
                    return Some(s);
                }
            }
        }
    }
    None
}

/// Adds `delta` to the first index of the first load in `e`.
fn bump_first_load(e: &mut SExpr, delta: i64) -> bool {
    match e {
        SExpr::Imm(_) => false,
        SExpr::Load { indices, .. } => {
            if let Some(i0) = indices.first_mut() {
                *i0 = i0.add_c(delta);
                true
            } else {
                false
            }
        }
        SExpr::Bin(_, a, b) => bump_first_load(a, delta) || bump_first_load(b, delta),
        SExpr::Unary(_, a) => bump_first_load(a, delta),
        SExpr::Select { then_, else_, .. } => {
            bump_first_load(then_, delta) || bump_first_load(else_, delta)
        }
    }
}

fn has_load(s: &Stmt) -> bool {
    let mut found = false;
    s.value.visit_loads(&mut |_, _| found = true);
    found
}

#[test]
fn baseline_gmm_verifies_clean() {
    let (g, _, _, plan, sched) = legal_gmm(true);
    let program = lower(&g, &plan, &sched);
    let diags = verify_program(&g, &plan, &program);
    assert!(diags.is_empty(), "{diags:?}");
    assert!(verify_program_strict(&g, &plan, &program).is_ok());
}

#[test]
fn definitely_oob_read_rejected() {
    let (g, _, _, plan, sched) = legal_gmm(false);
    let mut program = lower(&g, &plan, &sched);
    let nodes = &mut program.groups[0].nodes;
    let s = find_stmt_mut(nodes, &has_load).expect("a loading stmt");
    assert!(bump_first_load(&mut s.value, 1000));
    let diags = verify_program(&g, &plan, &program);
    assert!(
        codes_of(&diags).contains(&codes::V004_OOB_READ),
        "{diags:?}"
    );
}

#[test]
fn straddling_oob_read_rejected_when_exact() {
    // `+1` keeps most iterations legal but pushes the last one out; the
    // index is affine over distinct loop vars, so the straddle is proof.
    let (g, _, _, plan, sched) = legal_gmm(false);
    let mut program = lower(&g, &plan, &sched);
    let nodes = &mut program.groups[0].nodes;
    let s = find_stmt_mut(nodes, &has_load).expect("a loading stmt");
    assert!(bump_first_load(&mut s.value, 1));
    let diags = verify_program(&g, &plan, &program);
    assert!(
        codes_of(&diags).contains(&codes::V004_OOB_READ),
        "{diags:?}"
    );
}

#[test]
fn undercovered_pad_rejected() {
    // Pad the GMM weight along K, verify clean, then shrink the padded
    // buffer so the pad no longer covers the highest access: the straddle
    // must come back as V007 (pad undercovers), not a generic OOB.
    let (g, b, _, mut plan, sched) = legal_gmm(false);
    let padded = Layout::identity(g.tensor(b).shape.clone())
        .with(LayoutPrim::Pad {
            dim: 0,
            before: 0,
            after: 2,
        })
        .unwrap();
    let op = g.tensor(b).consumers[0];
    plan.assign_input_layout(&g, op, b, padded);
    let mut program = lower(&g, &plan, &sched);
    assert!(verify_program(&g, &plan, &program).is_empty());

    let buf = program.buffer_for_tensor(b).unwrap();
    let decl = &mut program.buffers[buf.0];
    assert_eq!(decl.shape.dim(0), 10, "padded K extent");
    let mut dims = decl.shape.dims().to_vec();
    dims[0] = 7; // below the 8 logical rows the kernel reads
    decl.shape = Shape::new(dims);
    let diags = verify_program(&g, &plan, &program);
    assert!(
        codes_of(&diags).contains(&codes::V007_PAD_UNDERCOVERS),
        "{diags:?}"
    );
}

#[test]
fn parallelized_reduction_rejected() {
    // Flip the K reduction loop (its body accumulates without using the
    // loop var in the store offset) to Parallel: a classic reduction race.
    let (g, _, _, plan, sched) = legal_gmm(false);
    let mut program = lower(&g, &plan, &sched);

    fn flip_reduce(nodes: &mut [TirNode]) -> bool {
        for node in nodes {
            if let TirNode::Loop {
                var, kind, body, ..
            } = node
            {
                let acc = find_stmt(body, &|s| s.mode == StoreMode::AddAcc);
                if let Some(s) = acc {
                    let mut vars = Vec::new();
                    for i in &s.indices {
                        i.collect_vars(&mut vars);
                    }
                    if !vars.iter().any(|v| v.id() == var.id()) {
                        *kind = LoopKind::Parallel;
                        return true;
                    }
                }
                if flip_reduce(body) {
                    return true;
                }
            }
        }
        false
    }
    assert!(
        flip_reduce(&mut program.groups[0].nodes),
        "no reduce loop found"
    );
    let diags = verify_program(&g, &plan, &program);
    assert!(
        codes_of(&diags).contains(&codes::V010_PAR_REDUCTION),
        "{diags:?}"
    );
}

#[test]
fn parallel_assign_race_rejected() {
    // Make a store under the parallel S0 loop invariant in the parallel
    // var: every thread writes the same cell, a loop-carried output
    // dependence.
    let (g, _, _, plan, sched) = legal_gmm(true);
    let mut program = lower(&g, &plan, &sched);
    let nodes = &mut program.groups[0].nodes;
    let s = find_stmt_mut(nodes, &|s| s.mode == StoreMode::Assign).expect("an assign stmt");
    let rank = s.indices.len();
    s.indices = vec![Expr::c(0); rank];
    let diags = verify_program(&g, &plan, &program);
    assert!(
        codes_of(&diags).contains(&codes::V009_PAR_RACE),
        "{diags:?}"
    );
}

#[test]
fn nonpositive_extent_rejected() {
    let (g, _, _, plan, sched) = legal_gmm(false);
    let mut program = lower(&g, &plan, &sched);
    if let Some(TirNode::Loop { extent, .. }) = program.groups[0].nodes.first_mut() {
        *extent = 0;
    } else {
        panic!("expected a loop at the group root");
    }
    let diags = verify_program(&g, &plan, &program);
    assert!(
        codes_of(&diags).contains(&codes::V003_NONPOSITIVE_EXTENT),
        "{diags:?}"
    );
}

#[test]
fn rebound_axis_rejected() {
    let (g, _, _, plan, sched) = legal_gmm(false);
    let mut program = lower(&g, &plan, &sched);
    let first = program.groups[0].nodes[0].clone();
    if let TirNode::Loop { var, extent, .. } = &first {
        program.groups[0].nodes[0] =
            TirNode::loop_(var.clone(), *extent, LoopKind::Serial, vec![first.clone()]);
    } else {
        panic!("expected a loop at the group root");
    }
    let diags = verify_program(&g, &plan, &program);
    assert!(
        codes_of(&diags).contains(&codes::V001_REBOUND_AXIS),
        "{diags:?}"
    );
}

#[test]
fn unbound_axis_rejected() {
    let (g, _, _, plan, sched) = legal_gmm(false);
    let mut program = lower(&g, &plan, &sched);
    let stray = find_stmt(&program.groups[0].nodes, &has_load).expect("a stmt");
    program.groups[0].nodes.push(TirNode::Stmt(stray));
    let diags = verify_program(&g, &plan, &program);
    assert!(
        codes_of(&diags).contains(&codes::V002_UNBOUND_AXIS),
        "{diags:?}"
    );
}

#[test]
fn strict_entry_point_reports_first_code() {
    let (g, _, _, plan, sched) = legal_gmm(false);
    let mut program = lower(&g, &plan, &sched);
    if let Some(TirNode::Loop { extent, .. }) = program.groups[0].nodes.first_mut() {
        *extent = -1;
    }
    let err = verify_program_strict(&g, &plan, &program).unwrap_err();
    assert_eq!(err.verify_code(), Some(codes::V003_NONPOSITIVE_EXTENT));
    assert_eq!(err.kind(), "verify");
}

/// Helper used by the mutation tests; kept here so the tests double as
/// documentation of the program surface they corrupt.
#[allow(dead_code)]
fn debug_dump(program: &Program) -> String {
    format!("{program:?}")
}
