//! Differential tests: interval arithmetic vs the integer-set engine on
//! random quasi-affine index expressions.
//!
//! Both analyses answer "can this index escape `[0, extent)`?". The
//! ground truth is brute-force enumeration of every loop assignment.
//! The load-bearing relations:
//!
//! * soundness — `Proven` implies every assignment is in bounds, and
//!   `Violated` implies some assignment escapes;
//! * containment — the set engine never rejects an access the interval
//!   pass proves in bounds (set accepts ⊇ interval accepts);
//! * precision — across the sampled family the set engine proves
//!   accesses the interval pass cannot, and definite escapes are
//!   reported as `Violated`, not silently accepted.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;

use alt_tensor::{Env, Expr, Var, VarGen};
use alt_verify::sets::{check_index_bounds, AccessQuery, SetVerdict};
use alt_verify::wellformed::bound_expr;
use alt_verify::VerifyStats;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Random quasi-affine expression over `vars`: +, -, constant multiply,
/// floor-div, mod, min, max. One arm produces a variable-variable
/// product, which falls outside the engine's fragment and must come back
/// `Unknown` (never a wrong verdict).
fn gen_expr(r: &mut Lcg, vars: &[Var], depth: usize) -> Expr {
    if depth == 0 {
        return if r.next().is_multiple_of(3) {
            Expr::c(r.next() as i64 % 9 - 3)
        } else {
            Expr::v(&vars[r.next() as usize % vars.len()])
        };
    }
    let a = gen_expr(r, vars, depth - 1);
    match r.next() % 9 {
        0 => a.add(&gen_expr(r, vars, depth - 1)),
        1 => a.sub(&gen_expr(r, vars, depth - 1)),
        2 => a.mul_c(1 + r.next() as i64 % 3),
        3 => a.div_c(1 + r.next() as i64 % 4),
        4 => a.mod_c(1 + r.next() as i64 % 5),
        5 => a.min_e(&gen_expr(r, vars, depth - 1)),
        6 => a.max_e(&gen_expr(r, vars, depth - 1)),
        7 => a.mul(&gen_expr(r, vars, depth - 1)),
        _ => a.add_c(r.next() as i64 % 7 - 3),
    }
}

/// Evaluates `e` at every point of the rectangular domain.
fn enumerate(e: &Expr, vars: &[(Var, i64)]) -> Vec<i64> {
    let mut out = Vec::new();
    let total: i64 = vars.iter().map(|(_, ext)| *ext).product();
    for flat in 0..total {
        let mut env = Env::new();
        let mut rest = flat;
        for (v, ext) in vars {
            env.bind(v, rest % ext);
            rest /= ext;
        }
        out.push(e.eval(&env));
    }
    out
}

#[test]
fn set_engine_agrees_with_brute_force_and_refines_intervals() {
    let mut gen = VarGen::new();
    let k0 = gen.fresh("k0");
    let k1 = gen.fresh("k1");
    let vars = [(k0.clone(), 5i64), (k1.clone(), 6i64)];
    let var_list = [k0.clone(), k1.clone()];
    let extents: HashMap<u32, i64> = vars.iter().map(|(v, e)| (v.id(), *e)).collect();

    let mut r = Lcg(0x5eed_cafe);
    let (mut proven, mut violated, mut unknown, mut refined) = (0u64, 0u64, 0u64, 0u64);
    for case in 0..500 {
        let e = gen_expr(&mut r, &var_list, 1 + (case % 3) as usize);
        let extent = [1i64, 4, 7][case as usize % 3];
        let values = enumerate(&e, &vars);
        let all_in = values.iter().all(|&v| (0..extent).contains(&v));

        let iv = bound_expr(&e, &extents);
        let interval_accepts = iv.is_some_and(|iv| iv.within(extent));
        let interval_definitely_out = iv.is_some_and(|iv| iv.hi < 0 || iv.lo >= extent);

        // Interval soundness (prerequisite for the containment claim).
        if interval_accepts {
            assert!(all_in, "interval accepted an escaping index: {e:?}");
        }
        if interval_definitely_out {
            assert!(
                !all_in,
                "interval rejected an always-in-bounds index: {e:?}"
            );
        }

        let mut stats = VerifyStats::default();
        let q = AccessQuery {
            env: &extents,
            pred: None,
            guards: &[],
        };
        match check_index_bounds(&e, extent, &q, &mut stats) {
            SetVerdict::Proven => {
                proven += 1;
                assert!(all_in, "set engine proved an escaping index: {e:?}");
                if !interval_accepts {
                    refined += 1;
                }
            }
            SetVerdict::Violated { witness } => {
                violated += 1;
                assert!(
                    !all_in,
                    "set engine rejected an always-in-bounds index: {e:?} ({witness:?})"
                );
                // Containment: never reject what the interval proves.
                assert!(
                    !interval_accepts,
                    "set engine rejected an interval-accepted index: {e:?}"
                );
            }
            SetVerdict::Unknown => unknown += 1,
        }
        assert_eq!(stats.set_queries, 1);
    }

    // The sampled family must actually exercise every verdict, and the
    // set engine must be strictly more precise than intervals somewhere
    // (the `conservative_recovered` mechanism relies on this).
    assert!(proven > 0, "no Proven verdicts sampled");
    assert!(violated > 0, "no Violated verdicts sampled");
    assert!(refined > 0, "set engine never refined an interval verdict");
    // Sanity: the out-of-fragment product arm really produces Unknowns.
    assert!(unknown > 0, "no Unknown verdicts sampled");
}

/// A pinned case where interval arithmetic is too coarse but the set
/// engine proves safety exactly: `idx = k - 3*min(k/3, 2)` over
/// `k in [0, 8)` stays in `[0, 4)` (it is `k mod 3` until the last
/// tile, then `k - 6 <= 1`), which naive range arithmetic cannot see.
#[test]
fn unfold_style_index_is_proven_only_by_the_set_engine() {
    let mut gen = VarGen::new();
    let k = gen.fresh("k");
    let extents: HashMap<u32, i64> = [(k.id(), 8i64)].into();
    let idx = Expr::v(&k).sub(&Expr::v(&k).div_c(3).min_e(&Expr::c(2)).mul_c(3));

    let iv = bound_expr(&idx, &extents);
    assert!(
        !iv.is_some_and(|iv| iv.within(4)),
        "interval unexpectedly precise: {iv:?}"
    );
    let mut stats = VerifyStats::default();
    let q = AccessQuery {
        env: &extents,
        pred: None,
        guards: &[],
    };
    assert_eq!(
        check_index_bounds(&idx, 4, &q, &mut stats),
        SetVerdict::Proven
    );
    // And the matching definite escape is caught with a witness.
    let verdict = check_index_bounds(&idx, 2, &q, &mut stats);
    let SetVerdict::Violated { witness } = verdict else {
        panic!("expected Violated, got {verdict:?}");
    };
    assert!(witness.is_some(), "witness sampling failed");
}
