//! Property-based tests for the tensor substrate: shape arithmetic,
//! index-expression algebra, and operator semantics invariants.

use proptest::prelude::*;

use alt_tensor::expr::{Env, Expr, VarGen};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, NdBuf, Shape};

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop::collection::vec(1i64..=9, 1..=4).prop_map(Shape::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Row-major flatten/unflatten are inverse bijections.
    #[test]
    fn shape_flatten_roundtrip(shape in arb_shape(), off_sel in any::<u64>()) {
        let n = shape.numel() as u64;
        let off = (off_sel % n) as i64;
        let idx = shape.unflatten(off);
        prop_assert_eq!(shape.flatten(&idx), off);
    }

    /// split semantics: i == (i / F) * F + i % F for every element, in the
    /// symbolic expression algebra.
    #[test]
    fn split_recomposition_identity(d in 1i64..=64, f_sel in any::<u64>(), i_sel in any::<u64>()) {
        let divisors: Vec<i64> = (1..=d).filter(|k| d % k == 0).collect();
        let f = divisors[(f_sel % divisors.len() as u64) as usize];
        let mut g = VarGen::new();
        let v = g.fresh("i");
        let recomposed = Expr::v(&v).div_c(f).mul_c(f).add(&Expr::v(&v).mod_c(f));
        let mut env = Env::new();
        let i = (i_sel % d as u64) as i64;
        env.bind(&v, i);
        prop_assert_eq!(recomposed.eval(&env), i);
    }

    /// fuse semantics: delinearizing a fused index recovers the parts.
    #[test]
    fn fuse_delinearize_identity(a in 1i64..=8, b in 1i64..=8, i_sel in any::<u64>(), j_sel in any::<u64>()) {
        let mut g = VarGen::new();
        let vi = g.fresh("i");
        let vj = g.fresh("j");
        let fused = Expr::v(&vi).mul_c(b).add(&Expr::v(&vj));
        let back_i = fused.div_c(b);
        let back_j = fused.mod_c(b);
        let mut env = Env::new();
        env.bind(&vi, (i_sel % a as u64) as i64);
        env.bind(&vj, (j_sel % b as u64) as i64);
        prop_assert_eq!(back_i.eval(&env), (i_sel % a as u64) as i64);
        prop_assert_eq!(back_j.eval(&env), (j_sel % b as u64) as i64);
    }

    /// Expression simplification preserves evaluation: building the same
    /// arithmetic with and without folding-friendly association gives the
    /// same value.
    #[test]
    fn expr_algebra_is_consistent(x in -50i64..50, a in 1i64..10, b in 1i64..10) {
        let mut g = VarGen::new();
        let v = g.fresh("x");
        let mut env = Env::new();
        env.bind(&v, x);
        // (x * a + b) computed two ways.
        let e1 = Expr::v(&v).mul_c(a).add_c(b);
        let e2 = Expr::v(&v).mul(&Expr::c(a)).add(&Expr::c(b).mul_c(1));
        prop_assert_eq!(e1.eval(&env), x * a + b);
        prop_assert_eq!(e2.eval(&env), x * a + b);
        // Euclidean div/mod invariant holds for negatives too.
        let d = Expr::v(&v).div_c(a);
        let m = Expr::v(&v).mod_c(a);
        prop_assert_eq!(d.eval(&env) * a + m.eval(&env), x);
        prop_assert!(m.eval(&env) >= 0);
    }

    /// ReLU is idempotent and monotone through the reference executor.
    #[test]
    fn relu_idempotent(vals in prop::collection::vec(-10.0f32..10.0, 1..32)) {
        let n = vals.len() as i64;
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([n]));
        let r1 = ops::relu(&mut g, x);
        let r2 = ops::relu(&mut g, r1);
        let mut bind = std::collections::HashMap::new();
        bind.insert(x, NdBuf::from_vec(Shape::new([n]), vals.clone()));
        let bufs = alt_tensor::exec::run_graph(&g, &bind);
        prop_assert_eq!(bufs[r1.0].data(), bufs[r2.0].data());
        for (o, i) in bufs[r1.0].data().iter().zip(&vals) {
            prop_assert!(*o >= 0.0 && *o >= *i - 1e-6);
        }
    }

    /// Convolution is linear in the input: conv(a*x) == a * conv(x).
    #[test]
    fn conv_is_linear(scale in 0.5f32..3.0, seed in any::<u64>()) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 2, 6, 6]));
        let w = g.add_param("w", Shape::new([3, 2, 3, 3]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let mut bind = alt_tensor::exec::random_bindings(&g, seed);
        let base = alt_tensor::exec::run_graph(&g, &bind);
        let xb = bind.get_mut(&x).unwrap();
        let scaled = NdBuf::from_fn(xb.shape().clone(), |i| xb.data()[i] * scale);
        *xb = scaled;
        let out2 = alt_tensor::exec::run_graph(&g, &bind);
        for (a, b) in base[y.0].data().iter().zip(out2[y.0].data()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    /// Max pooling commutes with monotone rescaling by a positive factor.
    #[test]
    fn maxpool_commutes_with_positive_scale(scale in 0.5f32..4.0, seed in any::<u64>()) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 2, 6, 6]));
        let p = ops::max_pool2d(&mut g, x, 2, 2);
        let mut bind = alt_tensor::exec::random_bindings(&g, seed);
        let base = alt_tensor::exec::run_graph(&g, &bind);
        let xb = bind.get_mut(&x).unwrap();
        *xb = NdBuf::from_fn(xb.shape().clone(), |i| xb.data()[i] * scale);
        let out2 = alt_tensor::exec::run_graph(&g, &bind);
        for (a, b) in base[p.0].data().iter().zip(out2[p.0].data()) {
            prop_assert!((a * scale - b).abs() < 1e-4 * (1.0 + b.abs()));
        }
    }

    /// permute then inverse-permute is the identity copy.
    #[test]
    fn permute_roundtrip(seed in any::<u64>()) {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([2, 3, 4]));
        let p = ops::permute(&mut g, x, &[2, 0, 1]);
        // Inverse of [2,0,1] is [1,2,0].
        let back = ops::permute(&mut g, p, &[1, 2, 0]);
        let bind = alt_tensor::exec::random_bindings(&g, seed);
        let bufs = alt_tensor::exec::run_graph(&g, &bind);
        prop_assert_eq!(bufs[back.0].data(), bind[&x].data());
    }
}
