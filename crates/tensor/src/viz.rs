//! Graphviz (DOT) export of computational graphs.

use std::fmt::Write as _;

use crate::graph::{Graph, OpTag, TensorKind};

/// Renders the graph in Graphviz DOT format.
///
/// Operators are boxes (complex operators shaded), tensors are ellipses;
/// constants are drawn dashed.
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::from("digraph model {\n  rankdir=TB;\n  node [fontsize=10];\n");
    for (k, t) in graph.tensors().iter().enumerate() {
        let style = match t.kind {
            TensorKind::Param => "shape=ellipse, style=dashed",
            TensorKind::Input => "shape=ellipse, style=bold",
            TensorKind::Intermediate => "shape=ellipse",
        };
        let _ = writeln!(out, "  t{k} [label=\"{}\\n{}\", {style}];", t.name, t.shape);
    }
    for node in graph.nodes() {
        let style = match node.tag {
            OpTag::Complex(_) => "shape=box, style=filled, fillcolor=lightblue",
            OpTag::Elementwise => "shape=box",
            OpTag::Padding => "shape=box, style=dotted",
            _ => "shape=box, style=rounded",
        };
        let _ = writeln!(
            out,
            "  op{} [label=\"{}\", {style}];",
            node.id.0, node.compute.name
        );
        for t in &node.inputs {
            let _ = writeln!(out, "  t{} -> op{};", t.0, node.id.0);
        }
        let _ = writeln!(out, "  op{} -> t{};", node.id.0, node.output.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{self, ConvCfg};
    use crate::Shape;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 3, 8, 8]));
        let w = g.add_param("w", Shape::new([4, 3, 3, 3]));
        let c = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let _ = ops::relu(&mut g, c);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("c2d"));
        assert!(dot.contains("relu"));
        assert!(dot.contains("lightblue"), "complex op should be shaded");
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }
}
