//! Tensor-expression operator definitions.
//!
//! An operator is a [`Compute`]: a set of spatial axes (one per logical
//! output dimension), an optional set of reduction axes, and a scalar body
//! expression over its inputs. This mirrors TVM's tensor-expression (TE)
//! layer — the substrate the paper's transformation module is built on.

use crate::expr::{Env, Expr, Var};

/// One iteration axis of a computation.
#[derive(Clone, Debug)]
pub struct Axis {
    /// The index variable bound by this axis.
    pub var: Var,
    /// Number of iterations (the logical dimension size).
    pub extent: i64,
}

impl Axis {
    /// Creates an axis.
    pub fn new(var: Var, extent: i64) -> Self {
        Self { var, extent }
    }
}

/// How reduction axes combine values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceKind {
    /// No reduction (pure elementwise / gather computation).
    None,
    /// Sum of body values.
    Sum,
    /// Maximum of body values.
    Max,
}

/// Scalar binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalarBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

/// Scalar unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Negation.
    Neg,
    /// `exp(x)`.
    Exp,
    /// `sqrt(x)`.
    Sqrt,
    /// `1 / sqrt(x)`.
    Rsqrt,
    /// `max(x, 0)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Absolute value.
    Abs,
}

impl UnaryOp {
    /// Applies the operator to a value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryOp::Neg => -x,
            UnaryOp::Exp => x.exp(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Rsqrt => 1.0 / x.sqrt(),
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Gelu => {
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
            }
            UnaryOp::Abs => x.abs(),
        }
    }
}

/// Integer predicates over index expressions (used for implicit zero
/// padding and the strided gather of transposed convolutions).
#[derive(Clone, Debug)]
pub enum Cond {
    /// `a >= b`.
    Ge(Expr, Expr),
    /// `a < b`.
    Lt(Expr, Expr),
    /// `a == b`.
    Eq(Expr, Expr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
}

impl Cond {
    /// Conjunction helper.
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }

    /// Evaluates the predicate under an environment.
    pub fn eval(&self, env: &Env) -> bool {
        match self {
            Cond::Ge(a, b) => a.eval(env) >= b.eval(env),
            Cond::Lt(a, b) => a.eval(env) < b.eval(env),
            Cond::Eq(a, b) => a.eval(env) == b.eval(env),
            Cond::And(a, b) => a.eval(env) && b.eval(env),
        }
    }

    /// Substitutes index variables inside the predicate.
    pub fn subst(&self, map: &std::collections::HashMap<u32, Expr>) -> Cond {
        match self {
            Cond::Ge(a, b) => Cond::Ge(a.subst(map), b.subst(map)),
            Cond::Lt(a, b) => Cond::Lt(a.subst(map), b.subst(map)),
            Cond::Eq(a, b) => Cond::Eq(a.subst(map), b.subst(map)),
            Cond::And(a, b) => Cond::And(Box::new(a.subst(map)), Box::new(b.subst(map))),
        }
    }
}

/// A scalar expression forming an operator body.
#[derive(Clone, Debug)]
pub enum ScalarExpr {
    /// Floating-point literal.
    Imm(f32),
    /// Load from input tensor `input` (position in the op's input list) at
    /// the given *logical* indices.
    Load {
        /// Index into the operator's input list.
        input: usize,
        /// Logical index expressions, one per input dimension.
        indices: Vec<Expr>,
    },
    /// Binary operation.
    Bin(ScalarBinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Unary operation.
    Unary(UnaryOp, Box<ScalarExpr>),
    /// `if cond { then_ } else { else_ }` — evaluated without reading the
    /// untaken branch (so out-of-bounds loads in the untaken branch are
    /// fine and model implicit zero padding).
    Select {
        /// Integer predicate.
        cond: Cond,
        /// Value when the predicate holds.
        then_: Box<ScalarExpr>,
        /// Value otherwise.
        else_: Box<ScalarExpr>,
    },
}

#[allow(clippy::should_implement_trait)] // combinator names mirror ScalarBinOp
impl ScalarExpr {
    /// Loads input `input` at `indices`.
    pub fn load(input: usize, indices: Vec<Expr>) -> ScalarExpr {
        ScalarExpr::Load { input, indices }
    }

    /// `self + rhs`.
    pub fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(ScalarBinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(ScalarBinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(ScalarBinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(ScalarBinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin(ScalarBinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// Applies a unary operator.
    pub fn unary(self, op: UnaryOp) -> ScalarExpr {
        ScalarExpr::Unary(op, Box::new(self))
    }

    /// Wraps the expression in a select.
    pub fn select(cond: Cond, then_: ScalarExpr, else_: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Select {
            cond,
            then_: Box::new(then_),
            else_: Box::new(else_),
        }
    }

    /// Substitutes index variables in all embedded index expressions.
    pub fn subst(&self, map: &std::collections::HashMap<u32, Expr>) -> ScalarExpr {
        match self {
            ScalarExpr::Imm(v) => ScalarExpr::Imm(*v),
            ScalarExpr::Load { input, indices } => ScalarExpr::Load {
                input: *input,
                indices: indices.iter().map(|e| e.subst(map)).collect(),
            },
            ScalarExpr::Bin(op, a, b) => {
                ScalarExpr::Bin(*op, Box::new(a.subst(map)), Box::new(b.subst(map)))
            }
            ScalarExpr::Unary(op, a) => ScalarExpr::Unary(*op, Box::new(a.subst(map))),
            ScalarExpr::Select { cond, then_, else_ } => ScalarExpr::Select {
                cond: cond.subst(map),
                then_: Box::new(then_.subst(map)),
                else_: Box::new(else_.subst(map)),
            },
        }
    }

    /// Counts scalar floating-point operations in one body evaluation.
    pub fn flops(&self) -> u64 {
        match self {
            ScalarExpr::Imm(_) | ScalarExpr::Load { .. } => 0,
            ScalarExpr::Bin(_, a, b) => 1 + a.flops() + b.flops(),
            ScalarExpr::Unary(_, a) => 1 + a.flops(),
            ScalarExpr::Select { then_, else_, .. } => 1 + then_.flops().max(else_.flops()),
        }
    }

    /// Visits every load in the expression.
    pub fn visit_loads(&self, f: &mut impl FnMut(usize, &[Expr])) {
        match self {
            ScalarExpr::Imm(_) => {}
            ScalarExpr::Load { input, indices } => f(*input, indices),
            ScalarExpr::Bin(_, a, b) => {
                a.visit_loads(f);
                b.visit_loads(f);
            }
            ScalarExpr::Unary(_, a) => a.visit_loads(f),
            ScalarExpr::Select { then_, else_, .. } => {
                then_.visit_loads(f);
                else_.visit_loads(f);
            }
        }
    }
}

/// A complete operator definition in tensor-expression form.
#[derive(Clone, Debug)]
pub struct Compute {
    /// Operator name (used in diagnostics and tuning logs).
    pub name: String,
    /// Spatial axes; one per logical output dimension, in order.
    pub axes: Vec<Axis>,
    /// Reduction axes (empty for elementwise operators).
    pub reduce_axes: Vec<Axis>,
    /// Reduction combinator.
    pub reduce: ReduceKind,
    /// Initial accumulator value for reductions.
    pub init: f32,
    /// Scalar body in terms of axis variables.
    pub body: ScalarExpr,
    /// Scale applied to the final (reduced) value, e.g. `1/k²` for average
    /// pooling. `1.0` means no scaling.
    pub post_scale: f32,
}

impl Compute {
    /// The logical output shape implied by the spatial axes.
    pub fn out_shape(&self) -> crate::shape::Shape {
        crate::shape::Shape::new(self.axes.iter().map(|a| a.extent).collect::<Vec<_>>())
    }

    /// Total floating-point operations for the whole output tensor.
    pub fn total_flops(&self) -> u64 {
        let spatial: i64 = self.axes.iter().map(|a| a.extent).product();
        let red: i64 = self.reduce_axes.iter().map(|a| a.extent).product();
        let per_iter = self.body.flops()
            + if self.reduce == ReduceKind::None {
                0
            } else {
                1
            };
        per_iter * spatial as u64 * red as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarGen;

    #[test]
    fn unary_ops_match_reference() {
        assert_eq!(UnaryOp::Relu.apply(-1.0), 0.0);
        assert_eq!(UnaryOp::Relu.apply(2.0), 2.0);
        assert!((UnaryOp::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((UnaryOp::Rsqrt.apply(4.0) - 0.5).abs() < 1e-6);
        assert!((UnaryOp::Gelu.apply(0.0)).abs() < 1e-6);
    }

    #[test]
    fn cond_eval() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let mut env = Env::new();
        env.bind(&i, 3);
        let c = Cond::Ge(Expr::v(&i), Expr::c(0)).and(Cond::Lt(Expr::v(&i), Expr::c(4)));
        assert!(c.eval(&env));
        env.bind(&i, 4);
        let c2 = Cond::Lt(Expr::v(&i), Expr::c(4));
        assert!(!c2.eval(&env));
    }

    #[test]
    fn flops_counting() {
        // a*b + c -> 2 flops.
        let e = ScalarExpr::load(0, vec![])
            .mul(ScalarExpr::load(1, vec![]))
            .add(ScalarExpr::load(2, vec![]));
        assert_eq!(e.flops(), 2);
    }

    #[test]
    fn compute_total_flops() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let r = g.fresh("r");
        let body = ScalarExpr::load(0, vec![Expr::v(&i), Expr::v(&r)])
            .mul(ScalarExpr::load(1, vec![Expr::v(&r)]));
        let c = Compute {
            name: "mv".into(),
            axes: vec![Axis::new(i, 4)],
            reduce_axes: vec![Axis::new(r, 8)],
            reduce: ReduceKind::Sum,
            init: 0.0,
            body,
            post_scale: 1.0,
        };
        // One mul + one accumulate per reduction iteration.
        assert_eq!(c.total_flops(), 2 * 4 * 8);
        assert_eq!(c.out_shape().dims(), &[4]);
    }
}
