//! Tensor-expression IR and computational graphs for the ALT reproduction.
//!
//! This crate is the bottom of the stack: symbolic index expressions
//! ([`expr`]), shapes and buffers ([`shape`], [`buffer`]), operator
//! definitions in tensor-expression form ([`op`], [`ops`]), computational
//! graphs ([`graph`]), and a naive reference executor ([`exec`]) that all
//! layout/loop transformations are validated against.

pub mod buffer;
pub mod exec;
pub mod expr;
pub mod graph;
pub mod op;
pub mod ops;
pub mod shape;
pub mod viz;

pub use buffer::NdBuf;
pub use expr::{Env, Expr, Var, VarGen};
pub use graph::{ComplexKind, Graph, Node, OpId, OpTag, TensorId, TensorInfo, TensorKind};
pub use op::{Axis, Compute, Cond, ReduceKind, ScalarExpr, UnaryOp};
pub use shape::Shape;
