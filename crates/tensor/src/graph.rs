//! Computational graphs: operators as nodes, tensors as edges.

use crate::expr::VarGen;
use crate::op::Compute;
use crate::shape::Shape;

/// Identifier of a tensor (edge) in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub usize);

/// Identifier of an operator (node) in a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// The kind of complex (layout-sensitive) operator, per the paper's
/// definition: convolutions and general matrix multiplication.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ComplexKind {
    /// 1-D convolution.
    Conv1d,
    /// 2-D convolution (also covers grouped / depthwise / dilated variants).
    Conv2d,
    /// 3-D convolution.
    Conv3d,
    /// Transposed 2-D convolution.
    TransposedConv2d,
    /// Transposed 3-D convolution.
    TransposedConv3d,
    /// General matrix multiplication.
    Gmm,
    /// Batched matrix multiplication.
    BatchGmm,
}

/// Coarse operator classification used by layout propagation (Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpTag {
    /// Convolution / GMM — layout tuning targets.
    Complex(ComplexKind),
    /// `Y[i] = F(X[i])` with identical shape — propagation can cross it.
    Elementwise,
    /// Zero padding — treated like an elementwise producer that can absorb
    /// layout conversions (Fig. 5b).
    Padding,
    /// Shape-changing reductions (pooling, softmax partials, mean...).
    Reduction,
    /// Anything else (reshape-like data movement, explicit layout
    /// conversion operators, ...).
    Other,
}

impl OpTag {
    /// True for convolutions and GMM.
    pub fn is_complex(&self) -> bool {
        matches!(self, OpTag::Complex(_))
    }
}

/// Where a tensor's contents come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TensorKind {
    /// Runtime input (activations).
    Input,
    /// Constant parameter (weights/bias) — layout conversions on these are
    /// free because they happen offline.
    Param,
    /// Produced by an operator.
    Intermediate,
}

/// A tensor edge.
#[derive(Clone, Debug)]
pub struct TensorInfo {
    /// Display name.
    pub name: String,
    /// Logical shape (semantic dimension order; physical layout is tracked
    /// separately by the layout module).
    pub shape: Shape,
    /// Producing operator, if any.
    pub producer: Option<OpId>,
    /// Consuming operators.
    pub consumers: Vec<OpId>,
    /// Input / parameter / intermediate.
    pub kind: TensorKind,
}

/// An operator node.
#[derive(Clone, Debug)]
pub struct Node {
    /// This node's id.
    pub id: OpId,
    /// Tensor-expression definition.
    pub compute: Compute,
    /// Input tensors, in the order referenced by the compute body's loads.
    pub inputs: Vec<TensorId>,
    /// Output tensor.
    pub output: TensorId,
    /// Classification for propagation and tuning.
    pub tag: OpTag,
}

/// A computational graph.
///
/// Nodes are stored in insertion order, which is a valid topological order
/// by construction (an op may only consume already-existing tensors).
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    tensors: Vec<TensorInfo>,
    /// Shared fresh-variable allocator for all computes in this graph.
    pub vargen: VarGen,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a runtime input tensor.
    pub fn add_input(&mut self, name: impl Into<String>, shape: Shape) -> TensorId {
        self.add_tensor(name.into(), shape, TensorKind::Input)
    }

    /// Adds a constant parameter tensor.
    pub fn add_param(&mut self, name: impl Into<String>, shape: Shape) -> TensorId {
        self.add_tensor(name.into(), shape, TensorKind::Param)
    }

    fn add_tensor(&mut self, name: String, shape: Shape, kind: TensorKind) -> TensorId {
        let id = TensorId(self.tensors.len());
        self.tensors.push(TensorInfo {
            name,
            shape,
            producer: None,
            consumers: Vec::new(),
            kind,
        });
        id
    }

    /// Adds an operator node; returns its output tensor.
    ///
    /// # Panics
    ///
    /// Panics if an input id is out of range (graph construction bug).
    pub fn add_op(&mut self, compute: Compute, inputs: Vec<TensorId>, tag: OpTag) -> TensorId {
        for t in &inputs {
            assert!(t.0 < self.tensors.len(), "unknown input tensor {t:?}");
        }
        let out_shape = compute.out_shape();
        let out = self.add_tensor(
            format!("{}_out", compute.name),
            out_shape,
            TensorKind::Intermediate,
        );
        let id = OpId(self.nodes.len());
        for t in &inputs {
            self.tensors[t.0].consumers.push(id);
        }
        self.tensors[out.0].producer = Some(id);
        self.nodes.push(Node {
            id,
            compute,
            inputs,
            output: out,
            tag,
        });
        out
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node lookup.
    pub fn node(&self, id: OpId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable node lookup.
    pub fn node_mut(&mut self, id: OpId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// All tensors.
    pub fn tensors(&self) -> &[TensorInfo] {
        &self.tensors
    }

    /// Tensor lookup.
    pub fn tensor(&self, id: TensorId) -> &TensorInfo {
        &self.tensors[id.0]
    }

    /// Number of operator nodes.
    pub fn num_ops(&self) -> usize {
        self.nodes.len()
    }

    /// Number of tensors.
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// Tensors that no operator consumes (the graph outputs).
    pub fn output_tensors(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .enumerate()
            .filter(|(_, t)| t.consumers.is_empty() && t.producer.is_some())
            .map(|(i, _)| TensorId(i))
            .collect()
    }

    /// Runtime input tensors.
    pub fn input_tensors(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TensorKind::Input)
            .map(|(i, _)| TensorId(i))
            .collect()
    }

    /// Parameter tensors.
    pub fn param_tensors(&self) -> Vec<TensorId> {
        self.tensors
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TensorKind::Param)
            .map(|(i, _)| TensorId(i))
            .collect()
    }

    /// Ids of all complex operators, in topological order.
    pub fn complex_ops(&self) -> Vec<OpId> {
        self.nodes
            .iter()
            .filter(|n| n.tag.is_complex())
            .map(|n| n.id)
            .collect()
    }

    /// Total floating-point work of the graph.
    pub fn total_flops(&self) -> u64 {
        self.nodes.iter().map(|n| n.compute.total_flops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::{Axis, ReduceKind, ScalarExpr};

    fn identity_compute(g: &mut Graph, n: i64, name: &str) -> Compute {
        let i = g.vargen.fresh("i");
        Compute {
            name: name.into(),
            body: ScalarExpr::load(0, vec![Expr::v(&i)]),
            axes: vec![Axis::new(i, n)],
            reduce_axes: vec![],
            reduce: ReduceKind::None,
            init: 0.0,
            post_scale: 1.0,
        }
    }

    #[test]
    fn build_and_query() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([8]));
        let c = identity_compute(&mut g, 8, "copy");
        let y = g.add_op(c, vec![x], OpTag::Elementwise);
        assert_eq!(g.num_ops(), 1);
        assert_eq!(g.tensor(y).producer, Some(OpId(0)));
        assert_eq!(g.tensor(x).consumers, vec![OpId(0)]);
        assert_eq!(g.output_tensors(), vec![y]);
        assert_eq!(g.input_tensors(), vec![x]);
    }

    #[test]
    fn chains_are_topological() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([4]));
        let c1 = identity_compute(&mut g, 4, "a");
        let t1 = g.add_op(c1, vec![x], OpTag::Elementwise);
        let c2 = identity_compute(&mut g, 4, "b");
        let t2 = g.add_op(c2, vec![t1], OpTag::Elementwise);
        assert_eq!(g.output_tensors(), vec![t2]);
        // Insertion order is topological.
        assert!(g.nodes()[0].output == t1 && g.nodes()[1].output == t2);
    }
}
