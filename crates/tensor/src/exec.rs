//! Naive reference execution of computational graphs.
//!
//! This executor ignores layouts and schedules entirely: it evaluates every
//! operator's tensor expression directly over logically-indexed buffers.
//! It is the ground truth the scheduled/layout-transformed interpreter is
//! checked against.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::buffer::NdBuf;
use crate::expr::Env;
use crate::graph::{Graph, TensorId, TensorKind};
use crate::op::{Compute, ReduceKind, ScalarExpr};
use crate::shape::Shape;

/// Evaluates a scalar body expression under `env`, reading from `inputs`.
pub fn eval_scalar(expr: &ScalarExpr, env: &Env, inputs: &[&NdBuf]) -> f32 {
    match expr {
        ScalarExpr::Imm(v) => *v,
        ScalarExpr::Load { input, indices } => {
            let idx: Vec<i64> = indices.iter().map(|e| e.eval(env)).collect();
            inputs[*input].get(&idx)
        }
        ScalarExpr::Bin(op, a, b) => {
            let x = eval_scalar(a, env, inputs);
            let y = eval_scalar(b, env, inputs);
            use crate::op::ScalarBinOp::*;
            match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Max => x.max(y),
                Min => x.min(y),
            }
        }
        ScalarExpr::Unary(op, a) => op.apply(eval_scalar(a, env, inputs)),
        ScalarExpr::Select { cond, then_, else_ } => {
            // Only the taken branch is evaluated, so out-of-bounds loads in
            // the untaken branch never happen (implicit zero padding).
            if cond.eval(env) {
                eval_scalar(then_, env, inputs)
            } else {
                eval_scalar(else_, env, inputs)
            }
        }
    }
}

/// Evaluates one output element of a compute at the given spatial index.
pub fn eval_point(compute: &Compute, spatial: &[i64], inputs: &[&NdBuf]) -> f32 {
    let mut env = Env::new();
    for (axis, &i) in compute.axes.iter().zip(spatial) {
        env.bind(&axis.var, i);
    }
    if compute.reduce == ReduceKind::None {
        return eval_scalar(&compute.body, &env, inputs) * compute.post_scale;
    }
    let red_shape = Shape::new(
        compute
            .reduce_axes
            .iter()
            .map(|a| a.extent)
            .collect::<Vec<_>>(),
    );
    let mut acc = compute.init;
    for ridx in red_shape.iter_indices() {
        for (axis, &i) in compute.reduce_axes.iter().zip(ridx.iter()) {
            env.bind(&axis.var, i);
        }
        let v = eval_scalar(&compute.body, &env, inputs);
        acc = match compute.reduce {
            ReduceKind::Sum => acc + v,
            ReduceKind::Max => acc.max(v),
            ReduceKind::None => unreachable!(),
        };
    }
    acc * compute.post_scale
}

/// Evaluates an entire compute into a fresh logically-laid-out buffer.
pub fn eval_compute(compute: &Compute, inputs: &[&NdBuf]) -> NdBuf {
    let out_shape = compute.out_shape();
    let mut out = NdBuf::zeros(out_shape.clone());
    for idx in out_shape.iter_indices() {
        let v = eval_point(compute, &idx, inputs);
        out.set(&idx, v);
    }
    out
}

/// Runs a whole graph given bindings for inputs and parameters.
///
/// Returns a buffer for every tensor in the graph (indexable by
/// [`TensorId`]).
///
/// # Panics
///
/// Panics if an input or parameter tensor is missing from `bindings`.
pub fn run_graph(graph: &Graph, bindings: &HashMap<TensorId, NdBuf>) -> Vec<NdBuf> {
    let mut bufs: Vec<Option<NdBuf>> = vec![None; graph.num_tensors()];
    for (k, t) in graph.tensors().iter().enumerate() {
        if t.kind != TensorKind::Intermediate {
            let id = TensorId(k);
            let b = bindings
                .get(&id)
                .unwrap_or_else(|| panic!("missing binding for tensor `{}`", t.name));
            assert_eq!(
                b.shape(),
                &t.shape,
                "binding shape mismatch for `{}`",
                t.name
            );
            bufs[k] = Some(b.clone());
        }
    }
    for node in graph.nodes() {
        let inputs: Vec<&NdBuf> = node
            .inputs
            .iter()
            .map(|t| bufs[t.0].as_ref().expect("topological order violated"))
            .collect();
        let out = eval_compute(&node.compute, &inputs);
        bufs[node.output.0] = Some(out);
    }
    bufs.into_iter()
        .map(|b| b.unwrap_or_else(|| NdBuf::zeros(Shape::new([1]))))
        .collect()
}

/// Creates seeded random bindings for every input and parameter tensor.
pub fn random_bindings(graph: &Graph, seed: u64) -> HashMap<TensorId, NdBuf> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = HashMap::new();
    for (k, t) in graph.tensors().iter().enumerate() {
        if t.kind != TensorKind::Intermediate {
            let shape = t.shape.clone();
            let buf = NdBuf::from_fn(shape, |_| rng.gen_range(-1.0..1.0));
            out.insert(TensorId(k), buf);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::ops::{self, ConvCfg};

    #[test]
    fn conv2d_matches_hand_computation() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 1, 3, 3]));
        let w = g.add_param("w", Shape::new([1, 1, 2, 2]));
        let y = ops::conv2d(&mut g, x, w, ConvCfg::default());
        let mut b = HashMap::new();
        b.insert(x, NdBuf::from_fn(Shape::new([1, 1, 3, 3]), |i| i as f32));
        b.insert(w, NdBuf::full(Shape::new([1, 1, 2, 2]), 1.0));
        let bufs = run_graph(&g, &b);
        let out = &bufs[y.0];
        // Each output = sum of a 2x2 window of 0..8 arranged row-major.
        assert_eq!(out.get(&[0, 0, 0, 0]), 0.0 + 1.0 + 3.0 + 4.0);
        assert_eq!(out.get(&[0, 0, 1, 1]), 4.0 + 5.0 + 7.0 + 8.0);
    }

    #[test]
    fn gmm_matches_hand_computation() {
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new([2, 2]));
        let bm = g.add_param("b", Shape::new([2, 2]));
        let c = ops::gmm(&mut g, a, bm);
        let mut bind = HashMap::new();
        bind.insert(
            a,
            NdBuf::from_vec(Shape::new([2, 2]), vec![1.0, 2.0, 3.0, 4.0]),
        );
        bind.insert(
            bm,
            NdBuf::from_vec(Shape::new([2, 2]), vec![5.0, 6.0, 7.0, 8.0]),
        );
        let bufs = run_graph(&g, &bind);
        assert_eq!(bufs[c.0].data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn pad_inserts_zeros() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([2, 2]));
        let y = ops::pad(&mut g, x, &[(1, 1), (1, 1)]);
        let mut bind = HashMap::new();
        bind.insert(x, NdBuf::full(Shape::new([2, 2]), 3.0));
        let bufs = run_graph(&g, &bind);
        let out = &bufs[y.0];
        assert_eq!(out.get(&[0, 0]), 0.0);
        assert_eq!(out.get(&[1, 1]), 3.0);
        assert_eq!(out.get(&[3, 3]), 0.0);
        assert_eq!(out.get(&[2, 2]), 3.0);
    }

    #[test]
    fn tconv_matches_upsampling_identity() {
        // 1x1 kernel of value 1 with stride 2 scatters inputs to even
        // positions and zeros elsewhere.
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 1, 2, 2]));
        let w = g.add_param("w", Shape::new([1, 1, 1, 1]));
        let y = ops::tconv2d(&mut g, x, w, 2);
        let mut bind = HashMap::new();
        bind.insert(x, NdBuf::full(Shape::new([1, 1, 2, 2]), 2.0));
        bind.insert(w, NdBuf::full(Shape::new([1, 1, 1, 1]), 1.0));
        let bufs = run_graph(&g, &bind);
        let out = &bufs[y.0];
        assert_eq!(out.shape().dims(), &[1, 1, 3, 3]);
        assert_eq!(out.get(&[0, 0, 0, 0]), 2.0);
        assert_eq!(out.get(&[0, 0, 0, 1]), 0.0);
        assert_eq!(out.get(&[0, 0, 2, 2]), 2.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([3, 7]));
        let y = ops::softmax_lastdim(&mut g, x);
        let bind = random_bindings(&g, 42);
        let bufs = run_graph(&g, &bind);
        let out = &bufs[y.0];
        for r in 0..3 {
            let s: f32 = (0..7).map(|c| out.get(&[r, c])).sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn avg_pool_averages() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 1, 2, 2]));
        let y = ops::avg_pool2d(&mut g, x, 2, 2);
        let mut bind = HashMap::new();
        bind.insert(
            x,
            NdBuf::from_vec(Shape::new([1, 1, 2, 2]), vec![1.0, 2.0, 3.0, 4.0]),
        );
        let bufs = run_graph(&g, &bind);
        assert_eq!(bufs[y.0].get(&[0, 0, 0, 0]), 2.5);
    }

    #[test]
    fn layernorm_normalizes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([2, 8]));
        let gamma = g.add_param("gamma", Shape::new([8]));
        let beta = g.add_param("beta", Shape::new([8]));
        let y = ops::layernorm_lastdim(&mut g, x, gamma, beta, 1e-5);
        let mut bind = random_bindings(&g, 7);
        bind.insert(gamma, NdBuf::full(Shape::new([8]), 1.0));
        bind.insert(beta, NdBuf::full(Shape::new([8]), 0.0));
        let bufs = run_graph(&g, &bind);
        let out = &bufs[y.0];
        for r in 0..2 {
            let mean: f32 = (0..8).map(|c| out.get(&[r, c])).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
        }
    }

    #[test]
    fn reshape_preserves_rowmajor_order() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([2, 3]));
        let y = ops::reshape(&mut g, x, Shape::new([3, 2]));
        let mut bind = HashMap::new();
        bind.insert(x, NdBuf::from_fn(Shape::new([2, 3]), |i| i as f32));
        let bufs = run_graph(&g, &bind);
        assert_eq!(bufs[y.0].data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
