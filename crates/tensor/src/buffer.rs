//! Dense row-major `f32` buffers used by the functional interpreter.

use crate::shape::Shape;

/// A dense, row-major `f32` tensor buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct NdBuf {
    shape: Shape,
    data: Vec<f32>,
}

impl NdBuf {
    /// Creates a zero-filled buffer of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.numel() as usize;
        Self {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a buffer filled with `v`.
    pub fn full(shape: Shape, v: f32) -> Self {
        let n = shape.numel() as usize;
        Self {
            shape,
            data: vec![v; n],
        }
    }

    /// Creates a buffer from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len() as i64,
            shape.numel(),
            "data length does not match shape {shape}"
        );
        Self { shape, data }
    }

    /// Creates a buffer whose element at linear offset `i` is `f(i)`.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> f32) -> Self {
        let n = shape.numel() as usize;
        let data = (0..n).map(&mut f).collect();
        Self { shape, data }
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the raw data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the raw data slice, mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reads the element at a multi-index.
    pub fn get(&self, idx: &[i64]) -> f32 {
        self.data[self.shape.flatten(idx) as usize]
    }

    /// Writes the element at a multi-index.
    pub fn set(&mut self, idx: &[i64], v: f32) {
        let off = self.shape.flatten(idx) as usize;
        self.data[off] = v;
    }

    /// Reads by linear offset.
    pub fn get_flat(&self, off: i64) -> f32 {
        self.data[off as usize]
    }

    /// Writes by linear offset.
    pub fn set_flat(&mut self, off: i64, v: f32) {
        self.data[off as usize] = v;
    }

    /// Maximum absolute difference against another buffer.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &NdBuf) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in comparison");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Returns true when all elements are within `tol` of `other`.
    pub fn allclose(&self, other: &NdBuf, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut b = NdBuf::zeros(Shape::new([2, 3]));
        assert_eq!(b.get(&[1, 2]), 0.0);
        b.set(&[1, 2], 5.0);
        assert_eq!(b.get(&[1, 2]), 5.0);
        assert_eq!(b.get_flat(5), 5.0);
    }

    #[test]
    fn from_fn_linear() {
        let b = NdBuf::from_fn(Shape::new([2, 2]), |i| i as f32);
        assert_eq!(b.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn allclose_detects_mismatch() {
        let a = NdBuf::full(Shape::new([4]), 1.0);
        let mut b = a.clone();
        assert!(a.allclose(&b, 0.0));
        b.set(&[0], 1.5);
        assert!(!a.allclose(&b, 0.1));
        assert!(a.allclose(&b, 0.6));
    }
}
