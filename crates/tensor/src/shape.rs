//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// The shape of a dense tensor (sizes of each dimension, outermost first).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<i64>);

impl Shape {
    /// Creates a shape from dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is non-positive.
    pub fn new(dims: impl Into<Vec<i64>>) -> Self {
        let dims = dims.into();
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Shape(dims)
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Size of dimension `k`.
    pub fn dim(&self, k: usize) -> i64 {
        self.0[k]
    }

    /// All dimension sizes.
    pub fn dims(&self) -> &[i64] {
        &self.0
    }

    /// Total number of elements.
    pub fn numel(&self) -> i64 {
        self.0.iter().product()
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<i64> {
        let mut s = vec![1; self.0.len()];
        for k in (0..self.0.len().saturating_sub(1)).rev() {
            s[k] = s[k + 1] * self.0[k + 1];
        }
        s
    }

    /// Flattens a multi-index into a row-major linear offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of
    /// bounds; both indicate lowering bugs.
    pub fn flatten(&self, idx: &[i64]) -> i64 {
        assert_eq!(idx.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        for (k, (&i, &d)) in idx.iter().zip(self.0.iter()).enumerate() {
            assert!(
                (0..d).contains(&i),
                "index {i} out of bounds for dim {k} of size {d} in shape {self}"
            );
            off = off * d + i;
        }
        off
    }

    /// Inverse of [`Shape::flatten`].
    pub fn unflatten(&self, mut off: i64) -> Vec<i64> {
        let mut idx = vec![0; self.0.len()];
        for k in (0..self.0.len()).rev() {
            idx[k] = off.rem_euclid(self.0[k]);
            off = off.div_euclid(self.0[k]);
        }
        idx
    }

    /// Iterates over all multi-indices in row-major order.
    pub fn iter_indices(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        let n = self.numel();
        (0..n).map(move |off| self.unflatten(off))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (k, d) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let s = Shape::new([3, 5, 7]);
        for off in 0..s.numel() {
            let idx = s.unflatten(off);
            assert_eq!(s.flatten(&idx), off);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flatten_oob_panics() {
        Shape::new([2, 2]).flatten(&[0, 2]);
    }

    #[test]
    fn iter_indices_is_row_major() {
        let s = Shape::new([2, 2]);
        let all: Vec<_> = s.iter_indices().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }
}
