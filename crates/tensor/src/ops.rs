//! Operator catalog: constructors for every operator used by the paper.
//!
//! Logical dimension order is fixed and semantic — `N, C, spatial...` for
//! convolutions, `M, K` / `K, N` for GMM. *Physical* data layout is a
//! separate concern handled by the layout module; e.g. the `NHWO` layout of
//! the paper is a physical permutation of the logical `N, O, H, W` output.

use crate::expr::{Expr, Var};
use crate::graph::{ComplexKind, Graph, OpTag, TensorId};
use crate::op::{Axis, Compute, Cond, ReduceKind, ScalarExpr, UnaryOp};
use crate::shape::Shape;

/// Configuration of an n-D convolution.
#[derive(Clone, Debug)]
pub struct ConvCfg {
    /// Stride along every spatial dimension (overridden per dimension by
    /// [`ConvCfg::strides`] when non-empty).
    pub stride: i64,
    /// Per-dimension strides (e.g. `(1, 2, 2)` for a ResNet3D stem);
    /// empty means uniform [`ConvCfg::stride`].
    pub strides: Vec<i64>,
    /// Dilation along every spatial dimension.
    pub dilation: i64,
    /// Number of channel groups (`1` = dense, `I` = depthwise).
    pub groups: i64,
}

impl Default for ConvCfg {
    fn default() -> Self {
        Self {
            stride: 1,
            strides: Vec::new(),
            dilation: 1,
            groups: 1,
        }
    }
}

impl ConvCfg {
    /// Dense convolution with the given uniform stride.
    pub fn strided(stride: i64) -> Self {
        Self {
            stride,
            ..Self::default()
        }
    }

    /// Dense convolution with per-dimension strides.
    pub fn with_strides(strides: &[i64]) -> Self {
        Self {
            strides: strides.to_vec(),
            ..Self::default()
        }
    }

    /// The stride used for spatial dimension `k`.
    pub fn stride_at(&self, k: usize) -> i64 {
        self.strides.get(k).copied().unwrap_or(self.stride)
    }

    /// Output spatial size for input size `in_sz`, kernel size `k`, along
    /// spatial dimension `dim`.
    pub fn out_spatial(&self, in_sz: i64, k: i64, dim: usize) -> i64 {
        (in_sz - self.dilation * (k - 1) - 1) / self.stride_at(dim) + 1
    }
}

fn v(var: &Var) -> Expr {
    Expr::v(var)
}

/// General n-D convolution shared by the 1-D/2-D/3-D constructors.
///
/// `x` has logical shape `[N, I, S1, .., Sd]`, `w` has
/// `[O, I/g, K1, .., Kd]`; the output is `[N, O, P1, .., Pd]` (valid
/// convolution — apply [`pad`] first for same-padding).
fn conv_nd(
    g: &mut Graph,
    x: TensorId,
    w: TensorId,
    cfg: ConvCfg,
    kind: ComplexKind,
    name: &str,
) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let ws = g.tensor(w).shape.clone();
    let d = xs.ndim() - 2;
    assert_eq!(ws.ndim(), d + 2, "weight rank mismatch for {name}");
    let (n, i_ch) = (xs.dim(0), xs.dim(1));
    let (o_ch, ipg) = (ws.dim(0), ws.dim(1));
    assert_eq!(
        ipg * cfg.groups,
        i_ch,
        "{name}: weight input channels {ipg} x groups {} != input channels {i_ch}",
        cfg.groups
    );
    assert_eq!(o_ch % cfg.groups, 0, "{name}: O not divisible by groups");
    let opg = o_ch / cfg.groups;

    let nv = g.vargen.fresh("n");
    let ov = g.vargen.fresh("o");
    let mut axes = vec![Axis::new(nv.clone(), n), Axis::new(ov.clone(), o_ch)];
    let mut spatial_vars = Vec::new();
    for k in 0..d {
        let insz = xs.dim(2 + k);
        let ksz = ws.dim(2 + k);
        let out = cfg.out_spatial(insz, ksz, k);
        assert!(out > 0, "{name}: non-positive output spatial size");
        let var = g.vargen.fresh(["h", "w", "z"][k.min(2)]);
        spatial_vars.push(var.clone());
        axes.push(Axis::new(var, out));
    }

    let ri = g.vargen.fresh("ri");
    let mut reduce_axes = vec![Axis::new(ri.clone(), ipg)];
    let mut rvars = Vec::new();
    for k in 0..d {
        let var = g.vargen.fresh(["rh", "rw", "rz"][k.min(2)]);
        rvars.push(var.clone());
        reduce_axes.push(Axis::new(var, ws.dim(2 + k)));
    }

    // Input channel index: (o / opg) * ipg + ri (group-local channel).
    let in_ch = if cfg.groups == 1 {
        v(&ri)
    } else {
        v(&ov).div_c(opg).mul_c(ipg).add(&v(&ri))
    };
    let mut x_idx = vec![v(&nv), in_ch];
    for k in 0..d {
        x_idx.push(
            v(&spatial_vars[k])
                .mul_c(cfg.stride_at(k))
                .add(&v(&rvars[k]).mul_c(cfg.dilation)),
        );
    }
    let mut w_idx = vec![v(&ov), v(&ri)];
    for rv in &rvars {
        w_idx.push(v(rv));
    }
    let body = ScalarExpr::load(0, x_idx).mul(ScalarExpr::load(1, w_idx));
    let compute = Compute {
        name: name.into(),
        axes,
        reduce_axes,
        reduce: ReduceKind::Sum,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x, w], OpTag::Complex(kind))
}

/// 1-D convolution: `x: [N, I, W]`, `w: [O, I, KW]`.
pub fn conv1d(g: &mut Graph, x: TensorId, w: TensorId, cfg: ConvCfg) -> TensorId {
    conv_nd(g, x, w, cfg, ComplexKind::Conv1d, "c1d")
}

/// 2-D convolution: `x: [N, I, H, W]`, `w: [O, I/g, KH, KW]`.
///
/// Covers dense (`groups == 1`), grouped, depthwise (`groups == I`) and
/// dilated (`dilation > 1`) variants.
pub fn conv2d(g: &mut Graph, x: TensorId, w: TensorId, cfg: ConvCfg) -> TensorId {
    conv_nd(g, x, w, cfg, ComplexKind::Conv2d, "c2d")
}

/// 3-D convolution: `x: [N, I, D, H, W]`, `w: [O, I, KD, KH, KW]`.
pub fn conv3d(g: &mut Graph, x: TensorId, w: TensorId, cfg: ConvCfg) -> TensorId {
    conv_nd(g, x, w, cfg, ComplexKind::Conv3d, "c3d")
}

/// Transposed n-D convolution shared by T2D/T3D.
///
/// `x: [N, I, S...]`, `w: [I, O, K...]`; output spatial size is
/// `(S-1)*stride + K`.
fn tconv_nd(g: &mut Graph, x: TensorId, w: TensorId, stride: i64, kind: ComplexKind) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let ws = g.tensor(w).shape.clone();
    let d = xs.ndim() - 2;
    let name = if d == 2 { "t2d" } else { "t3d" };
    let (n, i_ch) = (xs.dim(0), xs.dim(1));
    assert_eq!(ws.dim(0), i_ch, "{name}: weight/input channel mismatch");
    let o_ch = ws.dim(1);

    let nv = g.vargen.fresh("n");
    let ov = g.vargen.fresh("o");
    let mut axes = vec![Axis::new(nv.clone(), n), Axis::new(ov.clone(), o_ch)];
    let mut svars = Vec::new();
    for k in 0..d {
        let out = (xs.dim(2 + k) - 1) * stride + ws.dim(2 + k);
        let var = g.vargen.fresh(["h", "w", "z"][k.min(2)]);
        svars.push(var.clone());
        axes.push(Axis::new(var, out));
    }
    let ri = g.vargen.fresh("ri");
    let mut reduce_axes = vec![Axis::new(ri.clone(), i_ch)];
    let mut rvars = Vec::new();
    for k in 0..d {
        let var = g.vargen.fresh(["rh", "rw", "rz"][k.min(2)]);
        rvars.push(var.clone());
        reduce_axes.push(Axis::new(var, ws.dim(2 + k)));
    }

    // out[h] += select((h - rh) divisible by stride and in range,
    //                  x[(h - rh) / stride] * w[rh], 0)
    let mut x_idx = vec![v(&nv), v(&ri)];
    let mut cond: Option<Cond> = None;
    for k in 0..d {
        let diff = v(&svars[k]).sub(&v(&rvars[k]));
        let q = diff.floordiv(&Expr::c(stride));
        let c = Cond::Ge(diff.clone(), Expr::c(0))
            .and(Cond::Eq(diff.modulo(&Expr::c(stride)), Expr::c(0)))
            .and(Cond::Lt(q.clone(), Expr::c(xs.dim(2 + k))));
        cond = Some(match cond {
            None => c,
            Some(p) => p.and(c),
        });
        x_idx.push(q);
    }
    let mut w_idx = vec![v(&ri), v(&ov)];
    for rv in &rvars {
        w_idx.push(v(rv));
    }
    let prod = ScalarExpr::load(0, x_idx).mul(ScalarExpr::load(1, w_idx));
    let body = ScalarExpr::select(cond.expect("d >= 1"), prod, ScalarExpr::Imm(0.0));
    let compute = Compute {
        name: name.into(),
        axes,
        reduce_axes,
        reduce: ReduceKind::Sum,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x, w], OpTag::Complex(kind))
}

/// Transposed 2-D convolution: `x: [N, I, H, W]`, `w: [I, O, KH, KW]`.
pub fn tconv2d(g: &mut Graph, x: TensorId, w: TensorId, stride: i64) -> TensorId {
    tconv_nd(g, x, w, stride, ComplexKind::TransposedConv2d)
}

/// Transposed 3-D convolution: `x: [N, I, D, H, W]`, `w: [I, O, KD, KH, KW]`.
pub fn tconv3d(g: &mut Graph, x: TensorId, w: TensorId, stride: i64) -> TensorId {
    tconv_nd(g, x, w, stride, ComplexKind::TransposedConv3d)
}

/// General matrix multiplication `C[m, n] = sum_k A[m, k] * B[k, n]`.
pub fn gmm(g: &mut Graph, a: TensorId, b: TensorId) -> TensorId {
    let asz = g.tensor(a).shape.clone();
    let bsz = g.tensor(b).shape.clone();
    assert_eq!(asz.dim(1), bsz.dim(0), "gmm: inner dimension mismatch");
    let m = g.vargen.fresh("m");
    let n = g.vargen.fresh("n");
    let k = g.vargen.fresh("k");
    let body = ScalarExpr::load(0, vec![v(&m), v(&k)]).mul(ScalarExpr::load(1, vec![v(&k), v(&n)]));
    let compute = Compute {
        name: "gmm".into(),
        axes: vec![Axis::new(m.clone(), asz.dim(0)), Axis::new(n, bsz.dim(1))],
        reduce_axes: vec![Axis::new(k, asz.dim(1))],
        reduce: ReduceKind::Sum,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![a, b], OpTag::Complex(ComplexKind::Gmm))
}

/// Batched matrix multiplication `C[b, m, n] = sum_k A[b, m, k] * B[b, k, n]`.
pub fn batch_gmm(g: &mut Graph, a: TensorId, b: TensorId) -> TensorId {
    let asz = g.tensor(a).shape.clone();
    let bsz = g.tensor(b).shape.clone();
    assert_eq!(asz.dim(0), bsz.dim(0), "batch_gmm: batch mismatch");
    assert_eq!(asz.dim(2), bsz.dim(1), "batch_gmm: inner dim mismatch");
    let bv = g.vargen.fresh("b");
    let m = g.vargen.fresh("m");
    let n = g.vargen.fresh("n");
    let k = g.vargen.fresh("k");
    let body = ScalarExpr::load(0, vec![v(&bv), v(&m), v(&k)])
        .mul(ScalarExpr::load(1, vec![v(&bv), v(&k), v(&n)]));
    let compute = Compute {
        name: "batch_gmm".into(),
        axes: vec![
            Axis::new(bv, asz.dim(0)),
            Axis::new(m, asz.dim(1)),
            Axis::new(n, bsz.dim(2)),
        ],
        reduce_axes: vec![Axis::new(k, asz.dim(2))],
        reduce: ReduceKind::Sum,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![a, b], OpTag::Complex(ComplexKind::BatchGmm))
}

/// Zero padding: adds `(before, after)` zeros per dimension.
pub fn pad(g: &mut Graph, x: TensorId, pads: &[(i64, i64)]) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    assert_eq!(pads.len(), xs.ndim(), "pad: rank mismatch");
    let mut axes = Vec::new();
    let mut idx = Vec::new();
    let mut cond: Option<Cond> = None;
    for (k, &(b, a)) in pads.iter().enumerate() {
        let var = g.vargen.fresh(&format!("p{k}"));
        axes.push(Axis::new(var.clone(), xs.dim(k) + b + a));
        let shifted = v(&var).sub(&Expr::c(b));
        if b > 0 || a > 0 {
            let c = Cond::Ge(shifted.clone(), Expr::c(0))
                .and(Cond::Lt(shifted.clone(), Expr::c(xs.dim(k))));
            cond = Some(match cond {
                None => c,
                Some(p) => p.and(c),
            });
        }
        idx.push(shifted);
    }
    let load = ScalarExpr::load(0, idx);
    let body = match cond {
        Some(c) => ScalarExpr::select(c, load, ScalarExpr::Imm(0.0)),
        None => load,
    };
    let compute = Compute {
        name: "pad".into(),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x], OpTag::Padding)
}

/// Same-padding helper for 2-D convolutions: pads the two trailing spatial
/// dimensions by `p` on each side.
pub fn pad2d_spatial(g: &mut Graph, x: TensorId, p: i64) -> TensorId {
    let nd = g.tensor(x).shape.ndim();
    let mut pads = vec![(0, 0); nd];
    pads[nd - 2] = (p, p);
    pads[nd - 1] = (p, p);
    pad(g, x, &pads)
}

fn elementwise_axes(g: &mut Graph, shape: &Shape) -> (Vec<Axis>, Vec<Expr>) {
    let mut axes = Vec::new();
    let mut idx = Vec::new();
    for k in 0..shape.ndim() {
        let var = g.vargen.fresh(&format!("e{k}"));
        idx.push(v(&var));
        axes.push(Axis::new(var, shape.dim(k)));
    }
    (axes, idx)
}

fn unary_elementwise(g: &mut Graph, x: TensorId, op: UnaryOp, name: &str) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let (axes, idx) = elementwise_axes(g, &xs);
    let body = ScalarExpr::load(0, idx).unary(op);
    let compute = Compute {
        name: name.into(),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x], OpTag::Elementwise)
}

/// Rectified linear unit.
pub fn relu(g: &mut Graph, x: TensorId) -> TensorId {
    unary_elementwise(g, x, UnaryOp::Relu, "relu")
}

/// Logistic sigmoid.
pub fn sigmoid(g: &mut Graph, x: TensorId) -> TensorId {
    unary_elementwise(g, x, UnaryOp::Sigmoid, "sigmoid")
}

/// Hyperbolic tangent.
pub fn tanh(g: &mut Graph, x: TensorId) -> TensorId {
    unary_elementwise(g, x, UnaryOp::Tanh, "tanh")
}

/// Gaussian error linear unit.
pub fn gelu(g: &mut Graph, x: TensorId) -> TensorId {
    unary_elementwise(g, x, UnaryOp::Gelu, "gelu")
}

/// Multiplies every element by a compile-time constant.
pub fn scale_const(g: &mut Graph, x: TensorId, c: f32) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let (axes, idx) = elementwise_axes(g, &xs);
    let compute = Compute {
        name: "scale_const".into(),
        body: ScalarExpr::load(0, idx).mul(ScalarExpr::Imm(c)),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x], OpTag::Elementwise)
}

/// Clipped rectifier `min(max(x, 0), 6)` (MobileNet's ReLU6).
pub fn relu6(g: &mut Graph, x: TensorId) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let (axes, idx) = elementwise_axes(g, &xs);
    let body = ScalarExpr::Bin(
        crate::op::ScalarBinOp::Min,
        Box::new(ScalarExpr::load(0, idx).unary(UnaryOp::Relu)),
        Box::new(ScalarExpr::Imm(6.0)),
    );
    let compute = Compute {
        name: "relu6".into(),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x], OpTag::Elementwise)
}

/// Dimension permutation as an explicit copy: `out[i] = in[i . perm]`
/// (i.e. output dim `k` enumerates input dim `perm[k]`).
pub fn permute(g: &mut Graph, x: TensorId, perm: &[usize]) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    assert_eq!(perm.len(), xs.ndim(), "permute: rank mismatch");
    let new_shape = Shape::new(perm.iter().map(|&p| xs.dim(p)).collect::<Vec<_>>());
    let (axes, idx) = elementwise_axes(g, &new_shape);
    // in index for dim j = output index of the dim that maps to j.
    let mut in_idx = vec![Expr::c(0); xs.ndim()];
    for (k, &p) in perm.iter().enumerate() {
        in_idx[p] = idx[k].clone();
    }
    let compute = Compute {
        name: "permute".into(),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        body: ScalarExpr::load(0, in_idx),
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x], OpTag::Other)
}

/// Identity copy (used as an explicit layout-conversion operator).
pub fn identity(g: &mut Graph, x: TensorId, name: &str) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let (axes, idx) = elementwise_axes(g, &xs);
    let compute = Compute {
        name: name.into(),
        body: ScalarExpr::load(0, idx),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x], OpTag::Other)
}

fn binary_elementwise(
    g: &mut Graph,
    x: TensorId,
    y: TensorId,
    f: impl Fn(ScalarExpr, ScalarExpr) -> ScalarExpr,
    name: &str,
) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    assert_eq!(xs, g.tensor(y).shape, "{name}: shape mismatch");
    let (axes, idx) = elementwise_axes(g, &xs);
    let body = f(ScalarExpr::load(0, idx.clone()), ScalarExpr::load(1, idx));
    let compute = Compute {
        name: name.into(),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x, y], OpTag::Elementwise)
}

/// Elementwise addition (residual connections).
pub fn add(g: &mut Graph, x: TensorId, y: TensorId) -> TensorId {
    binary_elementwise(g, x, y, |a, b| a.add(b), "add")
}

/// Elementwise multiplication.
pub fn mul(g: &mut Graph, x: TensorId, y: TensorId) -> TensorId {
    binary_elementwise(g, x, y, |a, b| a.mul(b), "mul")
}

/// Adds a per-channel bias: `out[.., c, ..] = x[.., c, ..] + b[c]`.
///
/// `chan_dim` selects which dimension of `x` the bias vector indexes.
pub fn bias_add(g: &mut Graph, x: TensorId, b: TensorId, chan_dim: usize) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    assert_eq!(
        g.tensor(b).shape.dims(),
        &[xs.dim(chan_dim)],
        "bias_add: bias length mismatch"
    );
    let (axes, idx) = elementwise_axes(g, &xs);
    let bias_idx = vec![idx[chan_dim].clone()];
    let body = ScalarExpr::load(0, idx).add(ScalarExpr::load(1, bias_idx));
    let compute = Compute {
        name: "bias_add".into(),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x, b], OpTag::Elementwise)
}

/// Scales and shifts per channel (folded batch-norm):
/// `out[.., c, ..] = x[.., c, ..] * s[c] + t[c]`.
pub fn scale_shift(
    g: &mut Graph,
    x: TensorId,
    s: TensorId,
    t: TensorId,
    chan_dim: usize,
) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let (axes, idx) = elementwise_axes(g, &xs);
    let c_idx = vec![idx[chan_dim].clone()];
    let body = ScalarExpr::load(0, idx)
        .mul(ScalarExpr::load(1, c_idx.clone()))
        .add(ScalarExpr::load(2, c_idx));
    let compute = Compute {
        name: "scale_shift".into(),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        body,
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x, s, t], OpTag::Elementwise)
}

/// 2-D max pooling over `[N, C, H, W]`.
pub fn max_pool2d(g: &mut Graph, x: TensorId, k: i64, stride: i64) -> TensorId {
    pool2d(
        g,
        x,
        k,
        stride,
        ReduceKind::Max,
        f32::NEG_INFINITY,
        1.0,
        "max_pool2d",
    )
}

/// 2-D average pooling over `[N, C, H, W]`.
pub fn avg_pool2d(g: &mut Graph, x: TensorId, k: i64, stride: i64) -> TensorId {
    pool2d(
        g,
        x,
        k,
        stride,
        ReduceKind::Sum,
        0.0,
        1.0 / (k * k) as f32,
        "avg_pool2d",
    )
}

#[allow(clippy::too_many_arguments)]
fn pool2d(
    g: &mut Graph,
    x: TensorId,
    k: i64,
    stride: i64,
    reduce: ReduceKind,
    init: f32,
    post_scale: f32,
    name: &str,
) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let (n, c, h, w) = (xs.dim(0), xs.dim(1), xs.dim(2), xs.dim(3));
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let nv = g.vargen.fresh("n");
    let cv = g.vargen.fresh("c");
    let hv = g.vargen.fresh("h");
    let wv = g.vargen.fresh("w");
    let rh = g.vargen.fresh("rh");
    let rw = g.vargen.fresh("rw");
    let body = ScalarExpr::load(
        0,
        vec![
            v(&nv),
            v(&cv),
            v(&hv).mul_c(stride).add(&v(&rh)),
            v(&wv).mul_c(stride).add(&v(&rw)),
        ],
    );
    let compute = Compute {
        name: name.into(),
        axes: vec![
            Axis::new(nv, n),
            Axis::new(cv, c),
            Axis::new(hv, oh),
            Axis::new(wv, ow),
        ],
        reduce_axes: vec![Axis::new(rh, k), Axis::new(rw, k)],
        reduce,
        init,
        body,
        post_scale,
    };
    g.add_op(compute, vec![x], OpTag::Reduction)
}

/// 3-D max pooling over `[N, C, D, H, W]`.
pub fn max_pool3d(g: &mut Graph, x: TensorId, k: i64, stride: i64) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let (n, c) = (xs.dim(0), xs.dim(1));
    let out: Vec<i64> = (2..5).map(|d| (xs.dim(d) - k) / stride + 1).collect();
    let nv = g.vargen.fresh("n");
    let cv = g.vargen.fresh("c");
    let mut axes = vec![Axis::new(nv.clone(), n), Axis::new(cv.clone(), c)];
    let mut idx = vec![v(&nv), v(&cv)];
    let mut reduce_axes = Vec::new();
    for (kdim, &o) in out.iter().enumerate() {
        let sv = g.vargen.fresh(&format!("s{kdim}"));
        let rv = g.vargen.fresh(&format!("r{kdim}"));
        idx.push(v(&sv).mul_c(stride).add(&v(&rv)));
        axes.push(Axis::new(sv, o));
        reduce_axes.push(Axis::new(rv, k));
    }
    let compute = Compute {
        name: "max_pool3d".into(),
        axes,
        reduce_axes,
        reduce: ReduceKind::Max,
        init: f32::NEG_INFINITY,
        body: ScalarExpr::load(0, idx),
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x], OpTag::Reduction)
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
pub fn global_avg_pool(g: &mut Graph, x: TensorId) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let spatial: i64 = xs.dims()[2..].iter().product();
    let nv = g.vargen.fresh("n");
    let cv = g.vargen.fresh("c");
    let mut idx = vec![v(&nv), v(&cv)];
    let mut reduce_axes = Vec::new();
    for k in 2..xs.ndim() {
        let var = g.vargen.fresh(&format!("r{k}"));
        idx.push(v(&var));
        reduce_axes.push(Axis::new(var, xs.dim(k)));
    }
    let compute = Compute {
        name: "global_avg_pool".into(),
        axes: vec![Axis::new(nv, xs.dim(0)), Axis::new(cv, xs.dim(1))],
        reduce_axes,
        reduce: ReduceKind::Sum,
        init: 0.0,
        body: ScalarExpr::load(0, idx),
        post_scale: 1.0 / spatial as f32,
    };
    g.add_op(compute, vec![x], OpTag::Reduction)
}

/// Reshape as an explicit copy: reads the input at the row-major
/// delinearization of the output's row-major offset.
pub fn reshape(g: &mut Graph, x: TensorId, new_shape: Shape) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    assert_eq!(
        xs.numel(),
        new_shape.numel(),
        "reshape: element count mismatch"
    );
    let (axes, idx) = elementwise_axes(g, &new_shape);
    // Linear offset in the new shape.
    let mut lin = Expr::c(0);
    for (k, e) in idx.iter().enumerate() {
        lin = lin.mul_c(new_shape.dim(k)).add(e);
    }
    // Delinearize into the old shape.
    let strides = xs.strides();
    let mut old_idx = Vec::new();
    for (k, &stride) in strides.iter().enumerate() {
        old_idx.push(lin.div_c(stride).mod_c(xs.dim(k)));
    }
    let compute = Compute {
        name: "reshape".into(),
        axes,
        reduce_axes: vec![],
        reduce: ReduceKind::None,
        init: 0.0,
        body: ScalarExpr::load(0, old_idx),
        post_scale: 1.0,
    };
    g.add_op(compute, vec![x], OpTag::Other)
}

/// Softmax over the last dimension, decomposed into four primitive
/// operators (max-reduce, exp-of-difference, sum-reduce, divide).
pub fn softmax_lastdim(g: &mut Graph, x: TensorId) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let nd = xs.ndim();
    let last = xs.dim(nd - 1);

    // Row maxima: shape without the last dimension.
    let mut outer_axes = Vec::new();
    let mut outer_idx = Vec::new();
    for k in 0..nd - 1 {
        let var = g.vargen.fresh(&format!("s{k}"));
        outer_idx.push(v(&var));
        outer_axes.push(Axis::new(var, xs.dim(k)));
    }
    let r = g.vargen.fresh("r");
    let mut full_idx = outer_idx.clone();
    full_idx.push(v(&r));
    let mx = g.add_op(
        Compute {
            name: "softmax_max".into(),
            axes: outer_axes.clone(),
            reduce_axes: vec![Axis::new(r.clone(), last)],
            reduce: ReduceKind::Max,
            init: f32::NEG_INFINITY,
            body: ScalarExpr::load(0, full_idx),
            post_scale: 1.0,
        },
        vec![x],
        OpTag::Reduction,
    );

    // exp(x - max) with the max broadcast along the last dim.
    let (axes, idx) = elementwise_axes(g, &xs);
    let bcast: Vec<Expr> = idx[..nd - 1].to_vec();
    let ex = g.add_op(
        Compute {
            name: "softmax_exp".into(),
            axes,
            reduce_axes: vec![],
            reduce: ReduceKind::None,
            init: 0.0,
            body: ScalarExpr::load(0, idx)
                .sub(ScalarExpr::load(1, bcast))
                .unary(UnaryOp::Exp),
            post_scale: 1.0,
        },
        vec![x, mx],
        OpTag::Elementwise,
    );

    // Row sums.
    let mut outer_axes2 = Vec::new();
    let mut outer_idx2 = Vec::new();
    for k in 0..nd - 1 {
        let var = g.vargen.fresh(&format!("t{k}"));
        outer_idx2.push(v(&var));
        outer_axes2.push(Axis::new(var, xs.dim(k)));
    }
    let r2 = g.vargen.fresh("r");
    let mut full2 = outer_idx2.clone();
    full2.push(v(&r2));
    let sm = g.add_op(
        Compute {
            name: "softmax_sum".into(),
            axes: outer_axes2,
            reduce_axes: vec![Axis::new(r2, last)],
            reduce: ReduceKind::Sum,
            init: 0.0,
            body: ScalarExpr::load(0, full2),
            post_scale: 1.0,
        },
        vec![ex],
        OpTag::Reduction,
    );

    // Divide.
    let (axes3, idx3) = elementwise_axes(g, &xs);
    let bcast3: Vec<Expr> = idx3[..nd - 1].to_vec();
    g.add_op(
        Compute {
            name: "softmax_div".into(),
            axes: axes3,
            reduce_axes: vec![],
            reduce: ReduceKind::None,
            init: 0.0,
            body: ScalarExpr::load(0, idx3).div(ScalarExpr::load(1, bcast3)),
            post_scale: 1.0,
        },
        vec![ex, sm],
        OpTag::Elementwise,
    )
}

/// Layer normalization over the last dimension with learned scale/shift.
pub fn layernorm_lastdim(
    g: &mut Graph,
    x: TensorId,
    gamma: TensorId,
    beta: TensorId,
    eps: f32,
) -> TensorId {
    let xs = g.tensor(x).shape.clone();
    let nd = xs.ndim();
    let last = xs.dim(nd - 1);

    let reduce_lastdim = |g: &mut Graph, inp: TensorId, name: &str, square: bool| -> TensorId {
        let shape = g.tensor(inp).shape.clone();
        let mut axes = Vec::new();
        let mut idx = Vec::new();
        for k in 0..nd - 1 {
            let var = g.vargen.fresh(&format!("l{k}"));
            idx.push(v(&var));
            axes.push(Axis::new(var, shape.dim(k)));
        }
        let r = g.vargen.fresh("r");
        let mut full = idx.clone();
        full.push(v(&r));
        let load = ScalarExpr::load(0, full);
        let body = if square { load.clone().mul(load) } else { load };
        g.add_op(
            Compute {
                name: name.into(),
                axes,
                reduce_axes: vec![Axis::new(r, last)],
                reduce: ReduceKind::Sum,
                init: 0.0,
                body,
                post_scale: 1.0 / last as f32,
            },
            vec![inp],
            OpTag::Reduction,
        )
    };

    let mean = reduce_lastdim(g, x, "ln_mean", false);
    let meansq = reduce_lastdim(g, x, "ln_meansq", true);

    // out = (x - mean) * rsqrt(meansq - mean^2 + eps) * gamma + beta
    let (axes, idx) = elementwise_axes(g, &xs);
    let outer: Vec<Expr> = idx[..nd - 1].to_vec();
    let last_idx = vec![idx[nd - 1].clone()];
    let mean_l = ScalarExpr::load(1, outer.clone());
    let meansq_l = ScalarExpr::load(2, outer);
    let var_e = meansq_l
        .sub(mean_l.clone().mul(mean_l.clone()))
        .add(ScalarExpr::Imm(eps));
    let body = ScalarExpr::load(0, idx)
        .sub(mean_l)
        .mul(var_e.unary(UnaryOp::Rsqrt))
        .mul(ScalarExpr::load(3, last_idx.clone()))
        .add(ScalarExpr::load(4, last_idx));
    g.add_op(
        Compute {
            name: "ln_norm".into(),
            axes,
            reduce_axes: vec![],
            reduce: ReduceKind::None,
            init: 0.0,
            body,
            post_scale: 1.0,
        },
        vec![x, mean, meansq, gamma, beta],
        OpTag::Elementwise,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpTag;

    #[test]
    fn conv2d_shapes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 3, 8, 8]));
        let w = g.add_param("w", Shape::new([16, 3, 3, 3]));
        let y = conv2d(&mut g, x, w, ConvCfg::default());
        assert_eq!(g.tensor(y).shape.dims(), &[1, 16, 6, 6]);
        assert!(g.node(g.tensor(y).producer.unwrap()).tag.is_complex());
    }

    #[test]
    fn depthwise_conv_shapes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 8, 10, 10]));
        let w = g.add_param("w", Shape::new([8, 1, 3, 3]));
        let y = conv2d(
            &mut g,
            x,
            w,
            ConvCfg {
                groups: 8,
                ..ConvCfg::default()
            },
        );
        assert_eq!(g.tensor(y).shape.dims(), &[1, 8, 8, 8]);
    }

    #[test]
    fn tconv2d_shapes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 5, 5]));
        let w = g.add_param("w", Shape::new([4, 8, 3, 3]));
        let y = tconv2d(&mut g, x, w, 2);
        assert_eq!(g.tensor(y).shape.dims(), &[1, 8, 11, 11]);
    }

    #[test]
    fn gmm_shapes() {
        let mut g = Graph::new();
        let a = g.add_input("a", Shape::new([4, 6]));
        let b = g.add_param("b", Shape::new([6, 8]));
        let c = gmm(&mut g, a, b);
        assert_eq!(g.tensor(c).shape.dims(), &[4, 8]);
    }

    #[test]
    fn pad_shapes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 3, 8, 8]));
        let y = pad2d_spatial(&mut g, x, 2);
        assert_eq!(g.tensor(y).shape.dims(), &[1, 3, 12, 12]);
        assert_eq!(g.node(g.tensor(y).producer.unwrap()).tag, OpTag::Padding);
    }

    #[test]
    fn pool_shapes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 4, 8, 8]));
        let y = max_pool2d(&mut g, x, 2, 2);
        assert_eq!(g.tensor(y).shape.dims(), &[1, 4, 4, 4]);
        let z = global_avg_pool(&mut g, y);
        assert_eq!(g.tensor(z).shape.dims(), &[1, 4]);
    }

    #[test]
    fn softmax_builds_four_ops() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([2, 5]));
        let y = softmax_lastdim(&mut g, x);
        assert_eq!(g.tensor(y).shape.dims(), &[2, 5]);
        assert_eq!(g.num_ops(), 4);
    }

    #[test]
    fn reshape_shapes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([2, 3, 4]));
        let y = reshape(&mut g, x, Shape::new([6, 4]));
        assert_eq!(g.tensor(y).shape.dims(), &[6, 4]);
    }

    #[test]
    fn relu6_clips() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([3]));
        let y = relu6(&mut g, x);
        let mut bind = std::collections::HashMap::new();
        bind.insert(
            x,
            crate::NdBuf::from_vec(Shape::new([3]), vec![-1.0, 3.0, 9.0]),
        );
        let bufs = crate::exec::run_graph(&g, &bind);
        assert_eq!(bufs[y.0].data(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn permute_transposes() {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([2, 3]));
        let y = permute(&mut g, x, &[1, 0]);
        assert_eq!(g.tensor(y).shape.dims(), &[3, 2]);
        let mut bind = std::collections::HashMap::new();
        bind.insert(x, crate::NdBuf::from_fn(Shape::new([2, 3]), |i| i as f32));
        let bufs = crate::exec::run_graph(&g, &bind);
        assert_eq!(bufs[y.0].get(&[2, 1]), 5.0);
        assert_eq!(bufs[y.0].get(&[0, 1]), 3.0);
    }
}
