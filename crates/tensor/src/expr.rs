//! Symbolic integer index expressions.
//!
//! Layout and loop transformations rewrite the index expressions used by
//! tensor accesses (e.g. `split` turns `i` into `i / F` and `i % F`, `fuse`
//! turns `(i, j)` into `i * N + j`). This module provides the small integer
//! expression language those rewrites operate on, together with a
//! constant-folding simplifier and an evaluator.
//!
//! Expressions are immutable trees behind [`Arc`] so that sharing subterms
//! (which layout rewriting produces a lot of) is cheap and the resulting
//! trees can be simulated from worker threads.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A symbolic integer variable (usually a loop variable).
///
/// Identity is the numeric `id`; `name` is carried only for display.
#[derive(Clone, Debug, Eq)]
pub struct Var {
    id: u32,
    name: Arc<str>,
}

impl Var {
    /// Creates a variable with an explicit id and display name.
    ///
    /// Callers are responsible for id uniqueness; [`VarGen`] is the usual
    /// way to allocate fresh ids.
    pub fn new(id: u32, name: impl Into<Arc<str>>) -> Self {
        Self {
            id,
            name: name.into(),
        }
    }

    /// Returns the unique id of this variable.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Returns the display name of this variable.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl PartialEq for Var {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl std::hash::Hash for Var {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Allocator for fresh [`Var`] ids.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable with the given display name.
    pub fn fresh(&mut self, name: &str) -> Var {
        let id = self.next;
        self.next += 1;
        Var::new(id, name.to_string())
    }
}

/// Binary integer operators available in index expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Floor division (rounds toward negative infinity).
    FloorDiv,
    /// Euclidean remainder paired with [`BinOp::FloorDiv`].
    Mod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// A symbolic integer expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Variable reference.
    Var(Var),
    /// Binary operation.
    Bin(BinOp, Arc<Expr>, Arc<Expr>),
}

impl Expr {
    /// Builds a constant expression.
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Builds a variable reference.
    pub fn v(var: &Var) -> Expr {
        Expr::Var(var.clone())
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        // Constant folding and algebraic identities keep rewritten access
        // expressions readable and cheap to evaluate.
        use BinOp::*;
        if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
            return Expr::Const(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                FloorDiv => {
                    if *y == 0 {
                        // Division by zero is an internal bug in a
                        // transformation; surface it loudly.
                        panic!("index expression divides by zero")
                    }
                    x.div_euclid(*y)
                }
                Mod => {
                    if *y == 0 {
                        panic!("index expression mod by zero")
                    }
                    x.rem_euclid(*y)
                }
                Min => (*x).min(*y),
                Max => (*x).max(*y),
            });
        }
        match (op, &a, &b) {
            (Add, e, Expr::Const(0)) | (Sub, e, Expr::Const(0)) => return e.clone(),
            (Add, Expr::Const(0), e) => return e.clone(),
            (Mul, _, Expr::Const(0)) | (Mul, Expr::Const(0), _) => return Expr::Const(0),
            (Mul, e, Expr::Const(1)) | (Mul, Expr::Const(1), e) => return e.clone(),
            (FloorDiv, e, Expr::Const(1)) => return e.clone(),
            (Mod, _, Expr::Const(1)) => return Expr::Const(0),
            _ => {}
        }
        Expr::Bin(op, Arc::new(a), Arc::new(b))
    }

    /// Returns `self + rhs` with simplification.
    pub fn add(&self, rhs: &Expr) -> Expr {
        Expr::bin(BinOp::Add, self.clone(), rhs.clone())
    }

    /// Returns `self - rhs` with simplification.
    pub fn sub(&self, rhs: &Expr) -> Expr {
        Expr::bin(BinOp::Sub, self.clone(), rhs.clone())
    }

    /// Returns `self * rhs` with simplification.
    pub fn mul(&self, rhs: &Expr) -> Expr {
        Expr::bin(BinOp::Mul, self.clone(), rhs.clone())
    }

    /// Returns `self / rhs` (floor division) with simplification.
    pub fn floordiv(&self, rhs: &Expr) -> Expr {
        Expr::bin(BinOp::FloorDiv, self.clone(), rhs.clone())
    }

    /// Returns `self % rhs` (Euclidean) with simplification.
    pub fn modulo(&self, rhs: &Expr) -> Expr {
        Expr::bin(BinOp::Mod, self.clone(), rhs.clone())
    }

    /// Returns `min(self, rhs)` with simplification.
    pub fn min_e(&self, rhs: &Expr) -> Expr {
        Expr::bin(BinOp::Min, self.clone(), rhs.clone())
    }

    /// Returns `max(self, rhs)` with simplification.
    pub fn max_e(&self, rhs: &Expr) -> Expr {
        Expr::bin(BinOp::Max, self.clone(), rhs.clone())
    }

    /// Convenience: `self + c`.
    pub fn add_c(&self, c: i64) -> Expr {
        self.add(&Expr::Const(c))
    }

    /// Convenience: `self * c`.
    pub fn mul_c(&self, c: i64) -> Expr {
        self.mul(&Expr::Const(c))
    }

    /// Convenience: `self / c` (floor).
    pub fn div_c(&self, c: i64) -> Expr {
        self.floordiv(&Expr::Const(c))
    }

    /// Convenience: `self % c`.
    pub fn mod_c(&self, c: i64) -> Expr {
        self.modulo(&Expr::Const(c))
    }

    /// Evaluates the expression under a variable environment.
    ///
    /// # Panics
    ///
    /// Panics if a variable is missing from `env`; that always indicates a
    /// lowering bug, not a user error.
    pub fn eval(&self, env: &Env) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(v) => env.get(v),
            Expr::Bin(op, a, b) => {
                let x = a.eval(env);
                let y = b.eval(env);
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::FloorDiv => x.div_euclid(y),
                    BinOp::Mod => x.rem_euclid(y),
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                }
            }
        }
    }

    /// Substitutes variables by expressions.
    ///
    /// Variables not present in `map` are left untouched.
    pub fn subst(&self, map: &HashMap<u32, Expr>) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(v) => map.get(&v.id).cloned().unwrap_or_else(|| self.clone()),
            Expr::Bin(op, a, b) => Expr::bin(*op, a.subst(map), b.subst(map)),
        }
    }

    /// Collects the ids of all variables referenced by this expression.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                if !out.iter().any(|o| o.id == v.id) {
                    out.push(v.clone());
                }
            }
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Returns true if the expression references the given variable.
    pub fn uses_var(&self, id: u32) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Var(v) => v.id == id,
            Expr::Bin(_, a, b) => a.uses_var(id) || b.uses_var(id),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Bin(op, a, b) => {
                let s = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::FloorDiv => "/",
                    BinOp::Mod => "%",
                    BinOp::Min => return write!(f, "min({a}, {b})"),
                    BinOp::Max => return write!(f, "max({a}, {b})"),
                };
                write!(f, "({a} {s} {b})")
            }
        }
    }
}

/// Variable binding environment used during evaluation.
#[derive(Debug, Default, Clone)]
pub struct Env {
    vals: HashMap<u32, i64>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `var` to `val`, replacing any previous binding.
    pub fn bind(&mut self, var: &Var, val: i64) {
        self.vals.insert(var.id(), val);
    }

    /// Binds a variable by raw id.
    pub fn bind_id(&mut self, id: u32, val: i64) {
        self.vals.insert(id, val);
    }

    /// Looks up the value of `var`.
    ///
    /// # Panics
    ///
    /// Panics when the variable is unbound (a lowering bug).
    pub fn get(&self, var: &Var) -> i64 {
        match self.vals.get(&var.id()) {
            Some(v) => *v,
            None => panic!("unbound index variable `{}` (id {})", var.name(), var.id()),
        }
    }

    /// Looks up a binding by raw id, if present.
    pub fn get_id(&self, id: u32) -> Option<i64> {
        self.vals.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> (VarGen, Var, Var) {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let j = g.fresh("j");
        (g, i, j)
    }

    #[test]
    fn constant_folding() {
        let e = Expr::c(6).mul(&Expr::c(7));
        assert_eq!(e, Expr::Const(42));
        let e = Expr::c(7).div_c(2);
        assert_eq!(e, Expr::Const(3));
        let e = Expr::c(7).mod_c(4);
        assert_eq!(e, Expr::Const(3));
        assert_eq!(Expr::c(3).min_e(&Expr::c(5)), Expr::Const(3));
        assert_eq!(Expr::c(3).max_e(&Expr::c(5)), Expr::Const(5));
    }

    #[test]
    fn identities() {
        let (_, i, _) = vars();
        let iv = Expr::v(&i);
        assert_eq!(iv.add_c(0), iv);
        assert_eq!(iv.mul_c(1), iv);
        assert_eq!(iv.mul_c(0), Expr::Const(0));
        assert_eq!(iv.div_c(1), iv);
        assert_eq!(iv.mod_c(1), Expr::Const(0));
    }

    #[test]
    fn eval_split_roundtrip() {
        // i -> (i / 4) * 4 + i % 4 must be the identity for all i.
        let (_, i, _) = vars();
        let iv = Expr::v(&i);
        let recomposed = iv.div_c(4).mul_c(4).add(&iv.mod_c(4));
        for x in 0..64 {
            let mut env = Env::new();
            env.bind(&i, x);
            assert_eq!(recomposed.eval(&env), x);
        }
    }

    #[test]
    fn subst_replaces_vars() {
        let (_, i, j) = vars();
        let e = Expr::v(&i).add(&Expr::v(&j)).mul_c(2);
        let mut map = HashMap::new();
        map.insert(i.id(), Expr::c(3));
        map.insert(j.id(), Expr::c(4));
        assert_eq!(e.subst(&map), Expr::Const(14));
    }

    #[test]
    fn collect_and_uses() {
        let (_, i, j) = vars();
        let e = Expr::v(&i).add(&Expr::v(&j)).add(&Expr::v(&i));
        let mut vs = Vec::new();
        e.collect_vars(&mut vs);
        assert_eq!(vs.len(), 2);
        assert!(e.uses_var(i.id()));
        assert!(e.uses_var(j.id()));
        assert!(!e.uses_var(999));
    }

    #[test]
    fn display_is_readable() {
        let (_, i, _) = vars();
        let e = Expr::v(&i).div_c(4);
        assert_eq!(format!("{e}"), "(i / 4)");
    }

    #[test]
    fn floor_division_is_euclidean() {
        let e = Expr::c(-7).div_c(2);
        assert_eq!(e, Expr::Const(-4));
        let e = Expr::c(-7).mod_c(2);
        assert_eq!(e, Expr::Const(1));
    }
}
