//! Performance attribution for simulated ALT programs.
//!
//! Takes the structured cost breakdown the simulator produces
//! ([`alt_sim::CostBreakdown`]) and presents it three ways:
//!
//! * [`render_text`] — the flamegraph-style text tree plus roofline
//!   summary behind `altc profile`: one line per lowered group, one
//!   indented line per loop-nest leaf, each with its latency, share of
//!   the program total, a proportional bar, and the compute/memory
//!   component split.
//! * [`to_records`] — the same data as telemetry [`Record`]s
//!   ([`ProfileNodeRecord`] per node, [`RooflineRecord`] at the end), the
//!   stream the Chrome-trace exporter turns into nested Perfetto slices.
//! * [`summary_json`] — a compact JSON value for embedding in bench
//!   reports (`results/fig*.json`) and for `altc profile --json`.
//!
//! Everything here is presentation: the numbers come from the simulator's
//! conservation-checked breakdown and are reproduced, never recomputed.

use alt_sim::{roofline, CostBreakdown, CostComponents, Counters, MachineProfile, Roofline};
use alt_telemetry::{fmt_latency, ProfileNodeRecord, Record, RooflineRecord};
use serde_json::json;
use serde_json::Value;

/// A cost breakdown paired with its roofline position — everything the
/// renderers need.
#[derive(Clone, Debug)]
pub struct Profile {
    pub breakdown: CostBreakdown,
    pub roofline: Roofline,
}

impl Profile {
    /// Builds a profile from a breakdown, deriving the roofline from the
    /// breakdown's aggregate counters on the given machine.
    pub fn new(breakdown: CostBreakdown, profile: &MachineProfile) -> Self {
        let roofline = roofline(profile, &breakdown.counters);
        Self {
            breakdown,
            roofline,
        }
    }
}

/// Width of the proportional bars in [`render_text`].
const BAR_WIDTH: usize = 24;

fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < n { '#' } else { '.' });
    }
    s
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

/// One-line component split, e.g.
/// `compute 61% | l2 22% | dram 9% | lat 8%`.
fn split_line(c: &CostComponents) -> String {
    let t = c.total();
    format!(
        "compute {:.0}% | l2 {:.0}% | dram {:.0}% | lat {:.0}%",
        pct(c.compute_s, t),
        pct(c.l2_transfer_s, t),
        pct(c.dram_transfer_s, t),
        pct(c.l2_latency_s + c.dram_latency_s, t)
    )
}

/// The roofline summary line naming the binding ceiling, e.g.
/// `roofline: bandwidth bound — attained 12.3 GFLOP/s of 80.0 GFLOP/s
/// ceiling (AI 0.8 flop/B; peak 614.4 GFLOP/s, DRAM 96.0 GB/s)`.
pub fn roofline_line(r: &Roofline) -> String {
    let ai = if r.arithmetic_intensity.is_finite() {
        format!("{:.2} flop/B", r.arithmetic_intensity)
    } else {
        "inf (L2-resident)".to_string()
    };
    format!(
        "roofline: {} bound — attained {:.1} GFLOP/s of {:.1} GFLOP/s ceiling \
         (AI {ai}; peak {:.1} GFLOP/s, DRAM {:.1} GB/s)",
        r.binding(),
        r.attained_gflops,
        r.ceiling_gflops,
        r.peak_gflops,
        r.bandwidth_gbs
    )
}

/// Renders the flamegraph-style text tree plus roofline summary.
pub fn render_text(p: &Profile) -> String {
    let b = &p.breakdown;
    let mut out = String::new();
    out.push_str(&format!("=== cost profile ({}) ===\n", b.machine));
    out.push_str(&format!(
        "total {}   {}\n",
        fmt_latency(b.total_s),
        split_line(&b.components())
    ));
    let overhead = b.overhead_s();
    if overhead > 0.0 {
        out.push_str(&format!(
            "group overhead {} ({:.1}%)\n",
            fmt_latency(overhead),
            pct(overhead, b.total_s)
        ));
    }
    for g in &b.groups {
        out.push_str(&format!(
            "{:<40} {:>12}  {:>5.1}%  {}\n",
            g.label,
            fmt_latency(g.total_s),
            pct(g.total_s, b.total_s),
            bar(g.total_s / b.total_s.max(1e-30), BAR_WIDTH)
        ));
        for leaf in &g.leaves {
            out.push_str(&format!(
                "  {:<38} {:>12}  {:>5.1}%  {}  {}\n",
                leaf.path_string(),
                fmt_latency(leaf.latency_s),
                pct(leaf.latency_s, b.total_s),
                bar(leaf.latency_s / b.total_s.max(1e-30), BAR_WIDTH),
                split_line(&leaf.components)
            ));
            if leaf.bank_conflict_s > 0.0 {
                out.push_str(&format!(
                    "    bank conflicts: {} ({:.1}% of leaf)\n",
                    fmt_latency(leaf.bank_conflict_s),
                    pct(leaf.bank_conflict_s, leaf.latency_s)
                ));
            }
        }
        if g.overhead_s > 0.0 {
            out.push_str(&format!(
                "  {:<38} {:>12}  {:>5.1}%\n",
                "(fork/join overhead)",
                fmt_latency(g.overhead_s),
                pct(g.overhead_s, b.total_s)
            ));
        }
    }
    out.push_str(&roofline_line(&p.roofline));
    out.push('\n');
    out
}

/// (latency, fork/join overhead, bank-conflict penalty), all seconds.
struct NodeTiming {
    latency_s: f64,
    overhead_s: f64,
    bank_conflict_s: f64,
}

fn node_record(
    op: &str,
    path: String,
    store: String,
    t: NodeTiming,
    c: &CostComponents,
    counters: &Counters,
) -> Record {
    Record::ProfileNode(ProfileNodeRecord {
        op: op.to_string(),
        path,
        store,
        latency_s: t.latency_s,
        compute_s: c.compute_s,
        l2_transfer_s: c.l2_transfer_s,
        dram_transfer_s: c.dram_transfer_s,
        l2_latency_s: c.l2_latency_s,
        dram_latency_s: c.dram_latency_s,
        overhead_s: t.overhead_s,
        flops: counters.flops,
        l1_misses: counters.l1_misses,
        l2_misses: counters.l2_misses,
        prefetch_hidden: counters.prefetch_useful,
        simd_utilization: counters.simd_utilization(),
        bank_conflict_s: t.bank_conflict_s,
    })
}

/// Lowers the profile to telemetry records: one group node (empty path)
/// followed by its leaves, per group in program order, then the roofline.
/// This is the stream [`alt_telemetry::chrome_trace`] nests into Perfetto
/// slices.
pub fn to_records(p: &Profile) -> Vec<Record> {
    let b = &p.breakdown;
    let mut out = Vec::new();
    for g in &b.groups {
        // Group counters: rolled up over the group's leaves.
        let mut gc = Counters::default();
        for leaf in &g.leaves {
            gc.flops += leaf.counters.flops;
            gc.l1_misses += leaf.counters.l1_misses;
            gc.l2_misses += leaf.counters.l2_misses;
            gc.prefetch_useful += leaf.counters.prefetch_useful;
            gc.instructions += leaf.counters.instructions;
            gc.simd_weighted += leaf.counters.simd_weighted;
        }
        out.push(node_record(
            &g.label,
            String::new(),
            String::new(),
            NodeTiming {
                latency_s: g.total_s,
                overhead_s: g.overhead_s,
                bank_conflict_s: 0.0,
            },
            &g.components(),
            &gc,
        ));
        for leaf in &g.leaves {
            out.push(node_record(
                &g.label,
                leaf.path_string(),
                leaf.store.clone(),
                NodeTiming {
                    latency_s: leaf.latency_s,
                    overhead_s: 0.0,
                    bank_conflict_s: leaf.bank_conflict_s,
                },
                &leaf.components,
                &leaf.counters,
            ));
        }
    }
    let r = &p.roofline;
    out.push(Record::Roofline(RooflineRecord {
        machine: b.machine.clone(),
        arithmetic_intensity: r.arithmetic_intensity,
        attained_gflops: r.attained_gflops,
        peak_gflops: r.peak_gflops,
        bandwidth_gbs: r.bandwidth_gbs,
        ceiling_gflops: r.ceiling_gflops,
        binding: r.binding().to_string(),
    }));
    out
}

fn components_json(c: &CostComponents) -> Value {
    json!({
        "compute_s": c.compute_s,
        "l2_transfer_s": c.l2_transfer_s,
        "dram_transfer_s": c.dram_transfer_s,
        "l2_latency_s": c.l2_latency_s,
        "dram_latency_s": c.dram_latency_s,
    })
}

/// Compact JSON summary for bench reports and `altc profile --json`.
pub fn summary_json(p: &Profile) -> Value {
    let b = &p.breakdown;
    let groups: Vec<Value> = b
        .groups
        .iter()
        .map(|g| {
            let leaves: Vec<Value> = g
                .leaves
                .iter()
                .map(|l| {
                    json!({
                        "path": l.path_string(),
                        "store": l.store.clone(),
                        "latency_s": l.latency_s,
                        "components": components_json(&l.components),
                        "bank_conflict_s": l.bank_conflict_s,
                        "simd_utilization": l.counters.simd_utilization(),
                    })
                })
                .collect();
            json!({
                "label": g.label.clone(),
                "latency_s": g.total_s,
                "overhead_s": g.overhead_s,
                "components": components_json(&g.components()),
                "leaves": Value::Array(leaves),
            })
        })
        .collect();
    let r = &p.roofline;
    json!({
        "machine": b.machine.clone(),
        "total_s": b.total_s,
        "components": components_json(&b.components()),
        "overhead_s": b.overhead_s(),
        "groups": Value::Array(groups),
        "roofline": json!({
            "arithmetic_intensity": r.arithmetic_intensity,
            "attained_gflops": r.attained_gflops,
            "peak_gflops": r.peak_gflops,
            "bandwidth_gbs": r.bandwidth_gbs,
            "ceiling_gflops": r.ceiling_gflops,
            "binding": r.binding(),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alt_layout::{LayoutPlan, PropagationMode};
    use alt_loopir::{lower, GraphSchedule};
    use alt_sim::{intel_cpu, Simulator};
    use alt_tensor::ops::{self, ConvCfg};
    use alt_tensor::{Graph, Shape};

    fn conv_profile() -> Profile {
        let mut g = Graph::new();
        let x = g.add_input("x", Shape::new([1, 8, 14, 14]));
        let w = g.add_param("w", Shape::new([16, 8, 3, 3]));
        ops::conv2d(&mut g, x, w, ConvCfg::default());
        let plan = LayoutPlan::new(PropagationMode::Full);
        let program = lower(&g, &plan, &GraphSchedule::naive());
        let machine = intel_cpu();
        let sim = Simulator::new(machine);
        Profile::new(sim.profile_program(&program), &machine)
    }

    #[test]
    fn text_render_shows_tree_and_roofline() {
        let p = conv_profile();
        let text = render_text(&p);
        assert!(text.contains("=== cost profile (intel-cpu) ==="), "{text}");
        assert!(text.contains("c2d"), "{text}");
        // Leaf lines carry the component split and a bar.
        assert!(text.contains("compute "), "{text}");
        assert!(text.contains('#'), "{text}");
        // The roofline line names the binding ceiling.
        let roof = text.lines().find(|l| l.starts_with("roofline:")).unwrap();
        assert!(
            roof.contains("compute bound") || roof.contains("bandwidth bound"),
            "{roof}"
        );
        assert!(roof.contains("GFLOP/s"), "{roof}");
    }

    #[test]
    fn records_pair_groups_with_leaves_and_end_with_roofline() {
        let p = conv_profile();
        let records = to_records(&p);
        match records.first() {
            Some(Record::ProfileNode(n)) => {
                assert!(n.path.is_empty(), "first record must be a group node");
            }
            other => panic!("unexpected first record {other:?}"),
        }
        let leaves = records
            .iter()
            .filter(|r| matches!(r, Record::ProfileNode(n) if !n.path.is_empty()))
            .count();
        let total_leaves: usize = p.breakdown.groups.iter().map(|g| g.leaves.len()).sum();
        assert_eq!(leaves, total_leaves);
        assert!(matches!(records.last(), Some(Record::Roofline(_))));
    }

    #[test]
    fn records_conserve_leaf_latency_inside_groups() {
        // The Perfetto exporter nests leaves inside their group slice;
        // that only renders correctly if leaf durations fit the group.
        let p = conv_profile();
        let records = to_records(&p);
        let mut group_latency = 0.0;
        let mut leaf_sum = 0.0;
        let mut overhead = 0.0;
        for r in &records {
            if let Record::ProfileNode(n) = r {
                if n.path.is_empty() {
                    group_latency += n.latency_s;
                    overhead += n.overhead_s;
                } else {
                    leaf_sum += n.latency_s;
                }
            }
        }
        assert!(
            (leaf_sum + overhead - group_latency).abs() <= 1e-9 * group_latency,
            "leaves {leaf_sum} + overhead {overhead} != groups {group_latency}"
        );
    }

    #[test]
    fn summary_json_has_bench_report_shape() {
        let p = conv_profile();
        let v = summary_json(&p);
        assert!(v.get("total_s").is_some());
        assert!(v.get("roofline").and_then(|r| r.get("binding")).is_some());
        let groups = v.get("groups").and_then(Value::as_array).unwrap();
        assert!(!groups.is_empty());
        assert!(groups[0].get("leaves").is_some());
        // Round-trips through text.
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            back.get("machine").and_then(Value::as_str),
            Some(p.breakdown.machine.as_str())
        );
    }
}
