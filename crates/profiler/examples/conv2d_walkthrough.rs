//! The `altc profile` walkthrough from DESIGN.md: one conv2d profiled
//! twice — untouched NCHW with a naive schedule, then the layout+loop
//! co-tuned winner — so the attribution shows *where* the tuned version
//! gets its time back.
//!
//! ```text
//! cargo run --release -p alt-profiler --example conv2d_walkthrough
//! ```

use alt_autotune::tune_graph;
use alt_autotune::tuner::TuneConfig;
use alt_layout::{LayoutPlan, PropagationMode};
use alt_loopir::{lower, GraphSchedule};
use alt_profiler::{render_text, Profile};
use alt_sim::{intel_cpu, Simulator};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

fn main() {
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 32, 30, 30]));
    let w = g.add_param("w", Shape::new([64, 32, 3, 3]));
    ops::conv2d(&mut g, x, w, ConvCfg::default());
    let machine = intel_cpu();

    println!("--- NCHW, naive schedule ---");
    let naive = lower(
        &g,
        &LayoutPlan::new(PropagationMode::Full),
        &GraphSchedule::naive(),
    );
    let nb = Simulator::new(machine).profile_program(&naive);
    print!("{}", render_text(&Profile::new(nb, &machine)));

    println!("\n--- layout + loop co-tuned ---");
    let result = tune_graph(
        &g,
        machine,
        TuneConfig {
            joint_budget: 60,
            loop_budget: 90,
            free_input_layouts: true,
            seed: 1,
            ..TuneConfig::default()
        },
    );
    let tuned = lower(&g, &result.plan, &result.sched);
    let tb = Simulator::new(machine).profile_program(&tuned);
    print!("{}", render_text(&Profile::new(tb, &machine)));
}
