//! The search-journal record schema.
//!
//! One JSONL line per record, each carrying a `type` tag (same wire
//! idiom as `alt_telemetry::Record`), so a journal file is readable
//! without out-of-band schema knowledge:
//!
//! ```text
//! {"type":"header","version":1,"seed":42,"profile_fp":...,...}
//! {"type":"candidate","op":"conv2d#0","stage":"joint","outcome":"measured",...}
//! {"type":"layout_commit","op":"conv2d#0","point":[1,0,3],...}
//! {"type":"summary","measurements":64,...}
//! ```
//!
//! The schema is deliberately append-only and fingerprint-keyed: the
//! `program_fp`/`cache_key` pair on measured candidates is the seed of
//! the content-addressed result store planned in ROADMAP item 1, and
//! `(point, predicted, latency_s)` triples are the warm-start training
//! data of item 5.

use serde::{Deserialize, Serialize};

/// Journal schema version written by this crate.
pub const JOURNAL_VERSION: u64 = 1;

/// Where a candidate came from.
///
/// Stored as a lowercase string on the wire (`"seed"`, `"ppo"`,
/// `"random"`, `"neighbor"`, `"incumbent"`, `"finalist"`).
pub mod provenance {
    /// Hand-picked layout seed point (spatial / channel-tiled / …).
    pub const SEED: &str = "seed";
    /// Proposed by the PPO layout actor.
    pub const PPO: &str = "ppo";
    /// Uniform random draw from the (loop or layout) space.
    pub const RANDOM: &str = "random";
    /// Mutation of the best known loop point.
    pub const NEIGHBOR: &str = "neighbor";
    /// The current committed schedule, measured to establish a baseline.
    pub const INCUMBENT: &str = "incumbent";
    /// Joint-stage finalist re-assessed before committing.
    pub const FINALIST: &str = "finalist";
}

/// Terminal outcome of a candidate. Every generated candidate gets
/// exactly one of these.
pub mod outcome {
    /// Simulated fresh and recorded; consumed one budget unit.
    pub const MEASURED: &str = "measured";
    /// Budgeted measurement served from the memoized simulation cache.
    pub const CACHE_HIT: &str = "cache_hit";
    /// All measurement attempts failed (injected fault / timeout / …).
    pub const FAILED: &str = "failed";
    /// Rejected by the static verifier before simulation (zero budget).
    pub const VERIFY_REJECTED: &str = "verify_rejected";
    /// Lowering failed before verification (zero budget).
    pub const LOWER_FAILED: &str = "lower_failed";
    /// Filtered by the op:point quarantine before lowering (zero budget).
    pub const QUARANTINED: &str = "quarantined";
    /// Generated but never lowered or measured (top-k cut, cap, or
    /// budget exhaustion; zero budget).
    pub const SKIPPED: &str = "skipped";
}

/// First record of every journal: identifies the run the journal
/// belongs to. Deliberately excludes `jobs` — parallel runs must be
/// journal-bit-identical to sequential ones.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Schema version ([`JOURNAL_VERSION`]).
    pub version: u64,
    /// Tuner RNG seed.
    pub seed: u64,
    /// FNV-1a fingerprint of the machine profile (PR 4).
    pub profile_fp: u64,
    /// Configured joint-stage budget.
    pub joint_budget: u64,
    /// Configured loop-stage budget.
    pub loop_budget: u64,
}

/// One candidate the tuner touched, with its terminal outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CandidateRecord {
    /// Operator tag, e.g. `conv2d#0`.
    pub op: String,
    /// Tuning stage: `"joint"` or `"loop"`.
    pub stage: String,
    /// Tuning round within the stage, 1-based.
    pub round: u64,
    /// Who proposed the candidate (see [`provenance`]).
    pub provenance: String,
    /// Loop-space point, empty for the incumbent schedule.
    pub point: Vec<u64>,
    /// Terminal outcome (see [`outcome`]).
    pub outcome: String,
    /// GBT-predicted score, when the trained model ranked it.
    pub predicted: Option<f64>,
    /// Simulated latency in seconds (measured / cache-hit outcomes).
    pub latency_s: Option<f64>,
    /// Verifier diagnostic code (`verify_rejected` outcomes).
    pub vcode: Option<String>,
    /// Failure class (`failed` outcomes), e.g. `injected_compile`.
    pub error: Option<String>,
    /// Budget units this candidate consumed (0 for zero-budget
    /// outcomes; >1 when retries were spent on it).
    pub attempts: u64,
    /// Total budget consumed by the run *after* this candidate's
    /// terminal event — the journal's monotone budget axis.
    pub budget_end: u64,
    /// FNV-1a fingerprint of the lowered program (when simulated).
    pub program_fp: Option<u64>,
    /// Memo-cache key: fingerprint of (machine profile, program).
    pub cache_key: Option<u64>,
}

/// One layout point assessed during the joint stage (each visit runs
/// `rounds_per_layout` loop rounds whose candidates appear as
/// [`CandidateRecord`]s with stage `"joint"`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayoutVisitRecord {
    /// Operator whose layout space was probed.
    pub op: String,
    /// `"seed"`, `"ppo"`, `"random"`, or `"finalist"`.
    pub provenance: String,
    /// Layout-space point.
    pub point: Vec<u64>,
    /// Best latency the assessment found, when finite.
    pub latency_s: Option<f64>,
}

/// The joint stage committed a layout for a representative op.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayoutCommitRecord {
    /// Representative operator the layout was committed for.
    pub op: String,
    /// Committed layout-space point.
    pub point: Vec<u64>,
    /// Best latency of the winning assessment, when finite.
    pub latency_s: Option<f64>,
}

/// Final record of a run that finished (halted runs end without one, so
/// `halted journal + resumed journal == uninterrupted journal`).
///
/// The store fields are optional *on the wire*, not just in the struct:
/// a store-less run serializes without them (bit-identical to journals
/// predating the durable store), and missing fields parse as `None` —
/// no version bump needed. Hence the hand-written impls below.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalSummary {
    /// Budget units actually consumed.
    pub measurements: u64,
    /// Final best end-to-end latency in seconds, when finite.
    pub best_latency_s: Option<f64>,
    /// Durable-store lookups served without simulating (absent for
    /// store-less runs and for journals predating the store).
    pub store_hits: Option<u64>,
    /// Durable-store lookups that simulated and published.
    pub store_misses: Option<u64>,
    /// `true` when the run replayed a stored winner instead of
    /// searching (a warm start consumes zero budget).
    pub warm_start: Option<bool>,
}

impl Serialize for JournalSummary {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("measurements".to_string(), self.measurements.to_value()),
            ("best_latency_s".to_string(), self.best_latency_s.to_value()),
        ];
        if let Some(h) = self.store_hits {
            fields.push(("store_hits".to_string(), h.to_value()));
        }
        if let Some(m) = self.store_misses {
            fields.push(("store_misses".to_string(), m.to_value()));
        }
        if let Some(w) = self.warm_start {
            fields.push(("warm_start".to_string(), serde::Value::Bool(w)));
        }
        serde::Value::Object(fields.into())
    }
}

impl Deserialize for JournalSummary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            measurements: v
                .get("measurements")
                .and_then(|x| x.as_u64())
                .ok_or_else(|| serde::Error::missing_field("measurements"))?,
            best_latency_s: v.get("best_latency_s").and_then(|x| x.as_f64()),
            store_hits: v.get("store_hits").and_then(|x| x.as_u64()),
            store_misses: v.get("store_misses").and_then(|x| x.as_u64()),
            warm_start: v.get("warm_start").and_then(|x| x.as_bool()),
        })
    }
}

/// Any journal record. Serialized as the payload plus a `type` tag.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    Header(JournalHeader),
    Candidate(CandidateRecord),
    LayoutVisit(LayoutVisitRecord),
    LayoutCommit(LayoutCommitRecord),
    Summary(JournalSummary),
}

impl JournalRecord {
    /// The `type` tag used on the wire.
    pub fn type_tag(&self) -> &'static str {
        match self {
            JournalRecord::Header(_) => "header",
            JournalRecord::Candidate(_) => "candidate",
            JournalRecord::LayoutVisit(_) => "layout_visit",
            JournalRecord::LayoutCommit(_) => "layout_commit",
            JournalRecord::Summary(_) => "summary",
        }
    }
}

impl Serialize for JournalRecord {
    fn to_value(&self) -> serde::Value {
        let inner = match self {
            JournalRecord::Header(r) => r.to_value(),
            JournalRecord::Candidate(r) => r.to_value(),
            JournalRecord::LayoutVisit(r) => r.to_value(),
            JournalRecord::LayoutCommit(r) => r.to_value(),
            JournalRecord::Summary(r) => r.to_value(),
        };
        let mut fields = vec![(
            "type".to_string(),
            serde::Value::Str(self.type_tag().to_string()),
        )];
        if let serde::Value::Object(obj) = inner {
            fields.extend(obj);
        }
        serde::Value::Object(fields.into())
    }
}

impl Deserialize for JournalRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let tag = v
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| serde::Error("journal record has no `type` tag".to_string()))?;
        Ok(match tag {
            "header" => JournalRecord::Header(JournalHeader::from_value(v)?),
            "candidate" => JournalRecord::Candidate(CandidateRecord::from_value(v)?),
            "layout_visit" => JournalRecord::LayoutVisit(LayoutVisitRecord::from_value(v)?),
            "layout_commit" => JournalRecord::LayoutCommit(LayoutCommitRecord::from_value(v)?),
            "summary" => JournalRecord::Summary(JournalSummary::from_value(v)?),
            other => return Err(serde::Error(format!("unknown journal record `{other}`"))),
        })
    }
}

/// Maps a latency to its wire form: `None` when not finite (JSON has no
/// `inf`, and an unmeasured incumbent is "no signal", not a number).
pub fn finite(latency_s: f64) -> Option<f64> {
    latency_s.is_finite().then_some(latency_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_candidate() -> JournalRecord {
        JournalRecord::Candidate(CandidateRecord {
            op: "conv2d#0".into(),
            stage: "loop".into(),
            round: 3,
            provenance: provenance::NEIGHBOR.into(),
            point: vec![1, 0, 3],
            outcome: outcome::MEASURED.into(),
            predicted: Some(-2.5e-4),
            latency_s: Some(2.4e-4),
            vcode: None,
            error: None,
            attempts: 1,
            budget_end: 17,
            program_fp: Some(0x9e3779b97f4a7c15),
            cache_key: Some(0xdeadbeefcafef00d),
        })
    }

    #[test]
    fn records_roundtrip_through_jsonl() {
        let records = vec![
            JournalRecord::Header(JournalHeader {
                version: JOURNAL_VERSION,
                seed: 42,
                profile_fp: u64::MAX - 3,
                joint_budget: 12,
                loop_budget: 20,
            }),
            sample_candidate(),
            JournalRecord::Candidate(CandidateRecord {
                op: "gmm#1".into(),
                stage: "joint".into(),
                round: 1,
                provenance: provenance::RANDOM.into(),
                point: vec![2, 2],
                outcome: outcome::VERIFY_REJECTED.into(),
                predicted: None,
                latency_s: None,
                vcode: Some("V008_SPLIT_NOT_DIVISIBLE".into()),
                error: None,
                attempts: 0,
                budget_end: 17,
                program_fp: None,
                cache_key: None,
            }),
            JournalRecord::LayoutVisit(LayoutVisitRecord {
                op: "conv2d#0".into(),
                provenance: provenance::PPO.into(),
                point: vec![0, 1],
                latency_s: finite(f64::INFINITY),
            }),
            JournalRecord::LayoutCommit(LayoutCommitRecord {
                op: "conv2d#0".into(),
                point: vec![0, 1],
                latency_s: Some(1.0e-3),
            }),
            JournalRecord::Summary(JournalSummary {
                measurements: 32,
                best_latency_s: Some(9.5e-4),
                store_hits: Some(12),
                store_misses: Some(20),
                warm_start: Some(false),
            }),
        ];
        for r in &records {
            let line = serde_json::to_string(r).expect("journal record serializes");
            let back: JournalRecord = serde_json::from_str(&line).expect("parses back");
            assert_eq!(*r, back, "line {line}");
        }
    }

    #[test]
    fn type_tag_is_first_field() {
        let line = serde_json::to_string(&sample_candidate()).expect("serializes");
        assert!(line.starts_with(r#"{"type":"candidate""#), "{line}");
    }

    #[test]
    fn u64_fingerprints_survive_the_wire() {
        let line = serde_json::to_string(&JournalRecord::Header(JournalHeader {
            version: 1,
            seed: 7,
            profile_fp: u64::MAX,
            joint_budget: 0,
            loop_budget: 0,
        }))
        .expect("serializes");
        let back: JournalRecord = serde_json::from_str(&line).expect("parses");
        match back {
            JournalRecord::Header(h) => assert_eq!(h.profile_fp, u64::MAX),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn summary_store_fields_are_optional_on_the_wire() {
        // A journal written before the durable store parses with the
        // store fields absent...
        let old = r#"{"type":"summary","measurements":8,"best_latency_s":null}"#;
        let back: JournalRecord = serde_json::from_str(old).expect("old summary parses");
        match &back {
            JournalRecord::Summary(s) => {
                assert_eq!(s.measurements, 8);
                assert_eq!(s.store_hits, None);
                assert_eq!(s.store_misses, None);
                assert_eq!(s.warm_start, None);
            }
            other => panic!("wrong variant {other:?}"),
        }
        // ...and a store-less run serializes bit-identically to one:
        // no store keys on the wire at all.
        let line = serde_json::to_string(&back).expect("serializes");
        assert!(!line.contains("store_hits"), "{line}");
        assert!(!line.contains("warm_start"), "{line}");
        // A store-attached run's summary round-trips its counters.
        let with_store = JournalRecord::Summary(JournalSummary {
            measurements: 8,
            best_latency_s: Some(2e-3),
            store_hits: Some(5),
            store_misses: Some(3),
            warm_start: Some(true),
        });
        let line = serde_json::to_string(&with_store).expect("serializes");
        let again: JournalRecord = serde_json::from_str(&line).expect("parses");
        assert_eq!(with_store, again);
    }

    #[test]
    fn finite_maps_infinities_to_none() {
        assert_eq!(finite(1.5), Some(1.5));
        assert_eq!(finite(f64::INFINITY), None);
        assert_eq!(finite(f64::NAN), None);
    }
}
