//! Journal destinations and the cheap `Journal` handle.
//!
//! Mirrors `alt_telemetry::Telemetry`: instrumented code holds a
//! [`Journal`] that is either disabled (one `Option` check per emit) or
//! wraps a shared sink. All journal emission happens on the tuner's
//! sequential accounting path, so sinks never see concurrent writers
//! from a single run — but they are still `Send + Sync` so a journal
//! handle can live inside configs that cross threads.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::record::JournalRecord;

/// Destination for journal records.
pub trait JournalSink: Send + Sync {
    /// Accepts one record.
    fn record(&self, record: &JournalRecord);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Thread-safe in-memory collector, for tests and bench runs that
/// inspect the journal without touching disk.
#[derive(Default)]
pub struct MemoryJournal {
    records: Mutex<Vec<JournalRecord>>,
}

impl MemoryJournal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything journaled so far.
    pub fn records(&self) -> Vec<JournalRecord> {
        self.records
            .lock()
            .expect("memory journal poisoned")
            .clone()
    }

    /// The journal rendered exactly as its JSONL file would be — the
    /// byte-identity currency of the `--jobs` / checkpoint proptests.
    pub fn lines(&self) -> Vec<String> {
        self.records()
            .iter()
            .map(|r| serde_json::to_string(r).expect("journal record serializes"))
            .collect()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.lock().expect("memory journal poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl JournalSink for MemoryJournal {
    fn record(&self, record: &JournalRecord) {
        self.records
            .lock()
            .expect("memory journal poisoned")
            .push(record.clone());
    }
}

/// Appends one compact-JSON line per record to a file.
pub struct JsonlJournal {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlJournal {
    /// Creates (truncating) the journal file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Opens the journal file for appending — how a resumed run
    /// continues the journal its interrupted predecessor started.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl JournalSink for JsonlJournal {
    fn record(&self, record: &JournalRecord) {
        let line = serde_json::to_string(record).expect("journal record serializes");
        let mut w = self.writer.lock().expect("jsonl journal poisoned");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl journal poisoned").flush();
    }
}

impl Drop for JsonlJournal {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Cheap, clonable handle the tuner emits journal records through.
#[derive(Clone, Default)]
pub struct Journal {
    sink: Option<Arc<dyn JournalSink>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Journal {
    /// Disabled handle; emits are dropped before any work happens.
    pub fn noop() -> Self {
        Self { sink: None }
    }

    /// Wraps an existing shared sink.
    pub fn new(sink: Arc<dyn JournalSink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Collects records in memory; returns the handle and the sink for
    /// later inspection.
    pub fn memory() -> (Self, Arc<MemoryJournal>) {
        let sink = Arc::new(MemoryJournal::new());
        (Self::new(sink.clone()), sink)
    }

    /// Streams records to a JSONL journal file (truncating).
    pub fn jsonl(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(Arc::new(JsonlJournal::create(path)?)))
    }

    /// Continues an existing JSONL journal file (appending), for
    /// resumed runs.
    pub fn jsonl_append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(Arc::new(JsonlJournal::append(path)?)))
    }

    /// Whether emits reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Sends one record to the sink, if any.
    pub fn emit(&self, record: JournalRecord) {
        if let Some(sink) = &self.sink {
            sink.record(&record);
        }
    }

    /// Flushes the underlying sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

/// Parses journal text (one JSON record per line; blank lines allowed).
///
/// Fails loudly on a malformed line: a journal that does not parse is a
/// bug, and silently dropping lines would corrupt every diagnostic
/// downstream.
pub fn parse_journal(text: &str) -> Result<Vec<JournalRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: JournalRecord =
            serde_json::from_str(line).map_err(|e| format!("journal line {}: {}", i + 1, e.0))?;
        out.push(rec);
    }
    Ok(out)
}

/// Reads and parses a JSONL journal file.
pub fn read_journal(path: impl AsRef<Path>) -> Result<Vec<JournalRecord>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal `{}`: {e}", path.display()))?;
    parse_journal(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{JournalHeader, JournalSummary, JOURNAL_VERSION};

    fn header() -> JournalRecord {
        JournalRecord::Header(JournalHeader {
            version: JOURNAL_VERSION,
            seed: 1,
            profile_fp: 2,
            joint_budget: 3,
            loop_budget: 4,
        })
    }

    #[test]
    fn noop_handle_drops_records() {
        let j = Journal::noop();
        assert!(!j.is_enabled());
        j.emit(header());
        j.flush();
    }

    #[test]
    fn memory_journal_collects_in_order() {
        let (j, sink) = Journal::memory();
        assert!(j.is_enabled());
        j.emit(header());
        j.emit(JournalRecord::Summary(JournalSummary {
            measurements: 9,
            best_latency_s: None,
            store_hits: None,
            store_misses: None,
            warm_start: None,
        }));
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert!(matches!(records[0], JournalRecord::Header(_)));
        assert!(matches!(records[1], JournalRecord::Summary(_)));
    }

    #[test]
    fn jsonl_roundtrips_through_file_and_append() {
        let path = std::env::temp_dir().join(format!("alt_journal_{}.jsonl", std::process::id()));
        {
            let j = Journal::jsonl(&path).expect("create journal");
            j.emit(header());
            j.flush();
        }
        {
            let j = Journal::jsonl_append(&path).expect("append journal");
            j.emit(JournalRecord::Summary(JournalSummary {
                measurements: 5,
                best_latency_s: Some(0.25),
                store_hits: None,
                store_misses: None,
                warm_start: None,
            }));
            j.flush();
        }
        let records = read_journal(&path).expect("parses");
        let _ = std::fs::remove_file(&path);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], header());
        assert!(matches!(records[1], JournalRecord::Summary(_)));
    }

    #[test]
    fn parse_journal_rejects_garbage_loudly() {
        let err = parse_journal("{\"type\":\"header\"\n").expect_err("must fail");
        assert!(err.contains("line 1"), "{err}");
    }
}
