//! Derived diagnostics computed from a journal.
//!
//! Three lenses over the same record stream:
//!
//! * **Convergence** — best-so-far curve over the budget axis, plateau
//!   detection, budget-to-within-5%-of-final, per-op sample efficiency.
//! * **Calibration** — how well the GBT cost model ranked what was
//!   actually measured: rolling-window Spearman over time, a
//!   rank-vs-rank calibration table, and the worst mispredictions.
//! * **Coverage** — where the search actually went: per-op and
//!   per-provenance counts, outcome fractions, and per-axis
//!   distinct-value exploration of the visited points.

use serde::Serialize;

use crate::record::{outcome, CandidateRecord, JournalHeader, JournalRecord};

/// Candidate/outcome/budget totals for one journal.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Totals {
    /// All records, of any type.
    pub records: u64,
    /// Candidate records.
    pub candidates: u64,
    /// Joint-stage layout assessments.
    pub layout_visits: u64,
    /// Committed layouts.
    pub layout_commits: u64,
    /// Budget units consumed (sum of candidate `attempts`).
    pub budget_consumed: u64,
    /// Candidate count per terminal outcome, sorted by outcome name.
    pub outcomes: Vec<(String, u64)>,
}

/// One improvement step of the best-so-far curve.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CurvePoint {
    /// Budget consumed when the improvement landed.
    pub budget: u64,
    /// New best latency in seconds.
    pub best_s: f64,
}

/// Per-op sample efficiency.
#[derive(Clone, Debug, Serialize)]
pub struct OpConvergence {
    /// Operator tag.
    pub op: String,
    /// Budgeted samples (measured + cache hits) spent on this op.
    pub samples: u64,
    /// Best latency found for this op.
    pub best_s: Option<f64>,
    /// Budget consumed (run-wide) when the op's best first appeared.
    pub budget_to_best: u64,
}

/// Convergence analysis of the whole run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Convergence {
    /// Monotone best-so-far curve (improvements only).
    pub curve: Vec<CurvePoint>,
    /// Final best latency over all measured candidates.
    pub final_best_s: Option<f64>,
    /// First budget index whose best-so-far is within 5% of the final
    /// best (`best <= final * 1.05`).
    pub budget_to_within_5pct: Option<u64>,
    /// First budget index reaching 95% of final quality
    /// (`best <= final / 0.95`).
    pub budget_to_p95_of_final: Option<u64>,
    /// Budget index of the last improvement larger than 1% — the
    /// plateau starts here.
    pub plateau_budget: Option<u64>,
    /// Fraction of the consumed budget spent after the last >1%
    /// improvement (1.0 = the whole run was a plateau).
    pub plateau_frac: f64,
    /// Per-op sample efficiency, sorted by op name.
    pub per_op: Vec<OpConvergence>,
}

/// Rolling-window rank correlation at one point in the run.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RollingPoint {
    /// Index (1-based) of the last (predicted, measured) pair in the
    /// window.
    pub end: u64,
    /// Spearman rank correlation over the window.
    pub spearman: f64,
}

/// One row of the predicted-rank vs measured-rank calibration table.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CalibrationBin {
    /// Bin index, 0 = candidates the model ranked best.
    pub bin: u64,
    /// Pairs in the bin.
    pub pairs: u64,
    /// Mean predicted rank (1 = best) of the bin's pairs.
    pub mean_predicted_rank: f64,
    /// Mean measured rank (1 = fastest) of the bin's pairs.
    pub mean_measured_rank: f64,
}

/// A candidate the model got badly wrong.
#[derive(Clone, Debug, Serialize)]
pub struct Misprediction {
    /// Operator tag.
    pub op: String,
    /// Loop-space point.
    pub point: Vec<u64>,
    /// GBT-predicted score (higher = model thought better).
    pub predicted: f64,
    /// Measured latency in seconds.
    pub latency_s: f64,
    /// |predicted rank − measured rank| / pairs, in `[0, 1)`.
    pub rank_error: f64,
}

/// One (predicted, measured) point for the calibration scatter.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ScatterPoint {
    /// GBT-predicted score.
    pub predicted: f64,
    /// Measured latency in seconds.
    pub latency_s: f64,
}

/// Cost-model calibration over the run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Calibration {
    /// (predicted, measured) pairs the journal holds.
    pub pairs: u64,
    /// Spearman rank correlation over all pairs (prediction vs
    /// measured quality). 1.0 = the model ranked everything it scored
    /// perfectly.
    pub final_spearman: f64,
    /// Rolling-window Spearman (window 32, step 16) over pair order.
    pub rolling: Vec<RollingPoint>,
    /// Predicted-rank quintiles vs their mean measured rank.
    pub table: Vec<CalibrationBin>,
    /// Worst mispredictions by normalized rank error (top 5).
    pub worst: Vec<Misprediction>,
    /// Downsampled (predicted, measured) pairs for plotting (≤ 400).
    pub scatter: Vec<ScatterPoint>,
}

/// Per-op outcome counts.
#[derive(Clone, Debug, Serialize)]
pub struct OpCoverage {
    /// Operator tag.
    pub op: String,
    /// Candidates generated for the op.
    pub generated: u64,
    /// Measured fresh.
    pub measured: u64,
    /// Served from the memo cache.
    pub cache_hits: u64,
    /// Rejected by the static verifier.
    pub verify_rejected: u64,
    /// Exhausted their measurement attempts.
    pub failed: u64,
    /// Other zero-budget ends (quarantined / lower-failed / skipped).
    pub other: u64,
}

/// Outcome fractions over all candidates.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct OutcomeFractions {
    pub measured: f64,
    pub cache_hit: f64,
    pub verify_rejected: f64,
    pub failed: f64,
    pub other: f64,
}

/// How thoroughly one point axis was explored.
#[derive(Clone, Debug, Serialize)]
pub struct AxisCoverage {
    /// Operator tag.
    pub op: String,
    /// `"joint"` or `"loop"` — layout axes vs loop-knob axes.
    pub stage: String,
    /// Axis index within the point vector.
    pub axis: u64,
    /// Distinct values visited on this axis.
    pub distinct: u64,
    /// Smallest visited value.
    pub min: u64,
    /// Largest visited value.
    pub max: u64,
    /// Points sampled (non-empty points of this op/stage).
    pub samples: u64,
}

/// Joint-space coverage of the run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Coverage {
    /// Per-op outcome counts, sorted by op name.
    pub per_op: Vec<OpCoverage>,
    /// Candidate counts per provenance, sorted by name.
    pub per_provenance: Vec<(String, u64)>,
    /// Outcome fractions over all candidates.
    pub fractions: OutcomeFractions,
    /// Per-axis exploration histograms, sorted by (op, stage, axis).
    pub axes: Vec<AxisCoverage>,
}

/// Everything `altc inspect` knows about a journal.
#[derive(Clone, Debug, Serialize)]
pub struct Inspection {
    /// Run identity, when the journal has a header.
    pub header: Option<JournalHeader>,
    /// Record/outcome/budget totals.
    pub totals: Totals,
    /// Convergence analysis.
    pub convergence: Convergence,
    /// Cost-model calibration.
    pub calibration: Calibration,
    /// Joint-space coverage.
    pub coverage: Coverage,
}

fn is_budgeted_sample(c: &CandidateRecord) -> bool {
    c.outcome == outcome::MEASURED || c.outcome == outcome::CACHE_HIT
}

/// Computes all diagnostics from a parsed journal.
pub fn inspect(records: &[JournalRecord]) -> Inspection {
    let mut header = None;
    let mut candidates: Vec<&CandidateRecord> = Vec::new();
    let mut layout_visits = 0u64;
    let mut layout_commits = 0u64;
    for r in records {
        match r {
            JournalRecord::Header(h) => header = Some(h.clone()),
            JournalRecord::Candidate(c) => candidates.push(c),
            JournalRecord::LayoutVisit(_) => layout_visits += 1,
            JournalRecord::LayoutCommit(_) => layout_commits += 1,
            JournalRecord::Summary(_) => {}
        }
    }
    let totals = compute_totals(
        records.len() as u64,
        &candidates,
        layout_visits,
        layout_commits,
    );
    let convergence = compute_convergence(&candidates);
    let calibration = compute_calibration(&candidates);
    let coverage = compute_coverage(&candidates);
    Inspection {
        header,
        totals,
        convergence,
        calibration,
        coverage,
    }
}

fn compute_totals(
    records: u64,
    candidates: &[&CandidateRecord],
    layout_visits: u64,
    layout_commits: u64,
) -> Totals {
    let mut outcomes: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut budget_consumed = 0u64;
    for c in candidates {
        *outcomes.entry(c.outcome.clone()).or_insert(0) += 1;
        budget_consumed += c.attempts;
    }
    Totals {
        records,
        candidates: candidates.len() as u64,
        layout_visits,
        layout_commits,
        budget_consumed,
        outcomes: outcomes.into_iter().collect(),
    }
}

fn compute_convergence(candidates: &[&CandidateRecord]) -> Convergence {
    // Best-so-far over the run's budget axis, journal order.
    let mut curve: Vec<CurvePoint> = Vec::new();
    let mut best = f64::INFINITY;
    for c in candidates {
        if let Some(lat) = c.latency_s {
            if is_budgeted_sample(c) && lat < best {
                best = lat;
                curve.push(CurvePoint {
                    budget: c.budget_end,
                    best_s: lat,
                });
            }
        }
    }
    let final_best_s = best.is_finite().then_some(best);
    let budget_to = |target: f64| -> Option<u64> {
        curve.iter().find(|p| p.best_s <= target).map(|p| p.budget)
    };
    let (budget_to_within_5pct, budget_to_p95_of_final) = match final_best_s {
        Some(fb) => (budget_to(fb * 1.05), budget_to(fb / 0.95)),
        None => (None, None),
    };
    // Plateau: budget of the last improvement that beat the previous
    // best by more than 1%.
    let mut plateau_budget = None;
    let mut prev = f64::INFINITY;
    for p in &curve {
        if !prev.is_finite() || p.best_s < prev * 0.99 {
            plateau_budget = Some(p.budget);
        }
        prev = p.best_s;
    }
    let total_budget = candidates.iter().map(|c| c.attempts).sum::<u64>();
    let plateau_frac = match (plateau_budget, total_budget) {
        (Some(pb), total) if total > 0 => (total.saturating_sub(pb)) as f64 / total as f64,
        _ => 0.0,
    };

    let mut per_op: std::collections::BTreeMap<String, OpConvergence> =
        std::collections::BTreeMap::new();
    for c in candidates {
        if !is_budgeted_sample(c) {
            continue;
        }
        let entry = per_op.entry(c.op.clone()).or_insert_with(|| OpConvergence {
            op: c.op.clone(),
            samples: 0,
            best_s: None,
            budget_to_best: 0,
        });
        entry.samples += 1;
        if let Some(lat) = c.latency_s {
            if entry.best_s.is_none_or(|b| lat < b) {
                entry.best_s = Some(lat);
                entry.budget_to_best = c.budget_end;
            }
        }
    }
    Convergence {
        curve,
        final_best_s,
        budget_to_within_5pct,
        budget_to_p95_of_final,
        plateau_budget,
        plateau_frac,
        per_op: per_op.into_values().collect(),
    }
}

/// Average 1-based ranks with ties sharing their mean rank (mirrors
/// `alt_telemetry::stats::ranks`, which is private there).
fn mid_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

fn compute_calibration(candidates: &[&CandidateRecord]) -> Calibration {
    // A calibration pair needs both a prediction and a measurement.
    let paired: Vec<&CandidateRecord> = candidates
        .iter()
        .copied()
        .filter(|c| is_budgeted_sample(c) && c.predicted.is_some() && c.latency_s.is_some())
        .collect();
    let pred: Vec<f64> = paired.iter().filter_map(|c| c.predicted).collect();
    // Quality = negated latency, so "model says better" and "runs
    // faster" point the same way and a perfect model scores +1.
    let qual: Vec<f64> = paired
        .iter()
        .filter_map(|c| c.latency_s.map(|l| -l))
        .collect();
    let final_spearman = alt_telemetry::spearman(&pred, &qual);

    const WINDOW: usize = 32;
    const STEP: usize = 16;
    let mut rolling = Vec::new();
    if paired.len() >= WINDOW {
        let mut end = WINDOW;
        loop {
            let start = end - WINDOW;
            rolling.push(RollingPoint {
                end: end as u64,
                spearman: alt_telemetry::spearman(&pred[start..end], &qual[start..end]),
            });
            if end == paired.len() {
                break;
            }
            end = (end + STEP).min(paired.len());
        }
    }

    // Rank-vs-rank calibration table: quintiles of predicted rank.
    let pred_ranks = mid_ranks(&pred);
    let lat: Vec<f64> = paired.iter().filter_map(|c| c.latency_s).collect();
    let meas_ranks = mid_ranks(&lat);
    let n = paired.len();
    let mut table = Vec::new();
    if n >= 5 {
        const BINS: usize = 5;
        let mut acc = vec![(0u64, 0.0f64, 0.0f64); BINS];
        for i in 0..n {
            // Predicted rank 1 = model's best (highest score), so
            // invert the ascending rank of the raw score.
            let pr = n as f64 + 1.0 - pred_ranks[i];
            let bin = (((pr - 1.0) / n as f64) * BINS as f64).min(BINS as f64 - 1.0) as usize;
            acc[bin].0 += 1;
            acc[bin].1 += pr;
            acc[bin].2 += meas_ranks[i];
        }
        for (b, (count, pr_sum, mr_sum)) in acc.into_iter().enumerate() {
            if count > 0 {
                table.push(CalibrationBin {
                    bin: b as u64,
                    pairs: count,
                    mean_predicted_rank: pr_sum / count as f64,
                    mean_measured_rank: mr_sum / count as f64,
                });
            }
        }
    }

    // Worst mispredictions by normalized rank error.
    let mut errs: Vec<(f64, usize)> = (0..n)
        .map(|i| {
            let pr = n as f64 + 1.0 - pred_ranks[i];
            ((pr - meas_ranks[i]).abs() / n as f64, i)
        })
        .collect();
    errs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let worst = errs
        .iter()
        .take(5)
        .filter(|(e, _)| *e > 0.0)
        .map(|&(e, i)| Misprediction {
            op: paired[i].op.clone(),
            point: paired[i].point.clone(),
            predicted: pred[i],
            latency_s: lat[i],
            rank_error: e,
        })
        .collect();

    // Downsample the scatter to a plottable size, keeping run order.
    const SCATTER_MAX: usize = 400;
    let stride = n.div_ceil(SCATTER_MAX).max(1);
    let scatter = (0..n)
        .step_by(stride)
        .map(|i| ScatterPoint {
            predicted: pred[i],
            latency_s: lat[i],
        })
        .collect();

    Calibration {
        pairs: n as u64,
        final_spearman,
        rolling,
        table,
        worst,
        scatter,
    }
}

fn compute_coverage(candidates: &[&CandidateRecord]) -> Coverage {
    let mut per_op: std::collections::BTreeMap<String, OpCoverage> =
        std::collections::BTreeMap::new();
    let mut per_provenance: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    let mut fractions = OutcomeFractions::default();
    for c in candidates {
        let entry = per_op.entry(c.op.clone()).or_insert_with(|| OpCoverage {
            op: c.op.clone(),
            generated: 0,
            measured: 0,
            cache_hits: 0,
            verify_rejected: 0,
            failed: 0,
            other: 0,
        });
        entry.generated += 1;
        match c.outcome.as_str() {
            outcome::MEASURED => {
                entry.measured += 1;
                fractions.measured += 1.0;
            }
            outcome::CACHE_HIT => {
                entry.cache_hits += 1;
                fractions.cache_hit += 1.0;
            }
            outcome::VERIFY_REJECTED => {
                entry.verify_rejected += 1;
                fractions.verify_rejected += 1.0;
            }
            outcome::FAILED => {
                entry.failed += 1;
                fractions.failed += 1.0;
            }
            _ => {
                entry.other += 1;
                fractions.other += 1.0;
            }
        }
        *per_provenance.entry(c.provenance.clone()).or_insert(0) += 1;
    }
    let total = candidates.len() as f64;
    if total > 0.0 {
        fractions.measured /= total;
        fractions.cache_hit /= total;
        fractions.verify_rejected /= total;
        fractions.failed /= total;
        fractions.other /= total;
    }

    // Per-axis exploration: distinct values visited per (op, stage,
    // axis) over non-empty points.
    let mut axes_map: std::collections::BTreeMap<
        (String, String, u64),
        std::collections::BTreeSet<u64>,
    > = std::collections::BTreeMap::new();
    let mut point_counts: std::collections::BTreeMap<(String, String), u64> =
        std::collections::BTreeMap::new();
    for c in candidates {
        if c.point.is_empty() {
            continue;
        }
        *point_counts
            .entry((c.op.clone(), c.stage.clone()))
            .or_insert(0) += 1;
        for (axis, &v) in c.point.iter().enumerate() {
            axes_map
                .entry((c.op.clone(), c.stage.clone(), axis as u64))
                .or_default()
                .insert(v);
        }
    }
    let axes = axes_map
        .into_iter()
        .map(|((op, stage, axis), values)| {
            let samples = point_counts
                .get(&(op.clone(), stage.clone()))
                .copied()
                .unwrap_or(0);
            AxisCoverage {
                min: values.iter().next().copied().unwrap_or(0),
                max: values.iter().next_back().copied().unwrap_or(0),
                distinct: values.len() as u64,
                op,
                stage,
                axis,
                samples,
            }
        })
        .collect();

    Coverage {
        per_op: per_op.into_values().collect(),
        per_provenance: per_provenance.into_iter().collect(),
        fractions,
        axes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{provenance, JournalSummary, JOURNAL_VERSION};

    fn cand(
        op: &str,
        outcome_tag: &str,
        predicted: Option<f64>,
        latency_s: Option<f64>,
        attempts: u64,
        budget_end: u64,
        point: Vec<u64>,
    ) -> JournalRecord {
        JournalRecord::Candidate(CandidateRecord {
            op: op.into(),
            stage: "loop".into(),
            round: 1,
            provenance: provenance::RANDOM.into(),
            point,
            outcome: outcome_tag.into(),
            predicted,
            latency_s,
            vcode: None,
            error: None,
            attempts,
            budget_end,
            program_fp: None,
            cache_key: None,
        })
    }

    fn sample_journal() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Header(JournalHeader {
                version: JOURNAL_VERSION,
                seed: 1,
                profile_fp: 99,
                joint_budget: 2,
                loop_budget: 4,
            }),
            cand(
                "a",
                outcome::MEASURED,
                Some(-4.0),
                Some(4.0),
                1,
                1,
                vec![0, 1],
            ),
            cand(
                "a",
                outcome::MEASURED,
                Some(-2.0),
                Some(2.0),
                1,
                2,
                vec![1, 1],
            ),
            cand("a", outcome::VERIFY_REJECTED, None, None, 0, 2, vec![2, 0]),
            cand(
                "a",
                outcome::CACHE_HIT,
                Some(-1.0),
                Some(1.0),
                1,
                3,
                vec![1, 2],
            ),
            cand("b", outcome::FAILED, None, None, 2, 5, vec![3]),
            cand(
                "a",
                outcome::MEASURED,
                Some(-1.5),
                Some(1.02),
                1,
                6,
                vec![0, 2],
            ),
            JournalRecord::Summary(JournalSummary {
                measurements: 6,
                best_latency_s: Some(1.0),
                store_hits: None,
                store_misses: None,
                warm_start: None,
            }),
        ]
    }

    #[test]
    fn totals_count_outcomes_and_budget() {
        let insp = inspect(&sample_journal());
        assert_eq!(insp.totals.candidates, 6);
        assert_eq!(insp.totals.budget_consumed, 6);
        let outcomes: std::collections::HashMap<_, _> =
            insp.totals.outcomes.iter().cloned().collect();
        assert_eq!(outcomes["measured"], 3);
        assert_eq!(outcomes["cache_hit"], 1);
        assert_eq!(outcomes["verify_rejected"], 1);
        assert_eq!(outcomes["failed"], 1);
    }

    #[test]
    fn convergence_tracks_best_so_far() {
        let insp = inspect(&sample_journal());
        let c = &insp.convergence;
        assert_eq!(c.final_best_s, Some(1.0));
        let budgets: Vec<u64> = c.curve.iter().map(|p| p.budget).collect();
        assert_eq!(budgets, vec![1, 2, 3]);
        // best reaches 1.0 at budget 3; within 5% of final only there.
        assert_eq!(c.budget_to_within_5pct, Some(3));
        assert_eq!(c.budget_to_p95_of_final, Some(3));
        assert_eq!(c.plateau_budget, Some(3));
        // ops a and b both sampled; b has no finite latency.
        assert_eq!(c.per_op.len(), 1);
        assert_eq!(c.per_op[0].op, "a");
        assert_eq!(c.per_op[0].samples, 4);
        assert_eq!(c.per_op[0].budget_to_best, 3);
    }

    #[test]
    fn calibration_is_perfect_for_consistent_model() {
        let insp = inspect(&sample_journal());
        // predictions -4,-2,-1,-1.5 vs qualities -4,-2,-1,-1.02:
        // identical ordering, so Spearman is exactly 1.
        assert_eq!(insp.calibration.pairs, 4);
        assert!((insp.calibration.final_spearman - 1.0).abs() < 1e-12);
        // perfectly ranked → no nonzero rank errors survive the filter.
        assert!(insp.calibration.worst.is_empty());
        assert_eq!(insp.calibration.scatter.len(), 4);
    }

    #[test]
    fn calibration_flags_mispredictions() {
        let mut j = sample_journal();
        // A candidate the model loved that measured slowest.
        j.push(cand(
            "a",
            outcome::MEASURED,
            Some(-0.5),
            Some(9.0),
            1,
            7,
            vec![5, 5],
        ));
        let insp = inspect(&j);
        assert!(insp.calibration.final_spearman < 1.0);
        assert!(!insp.calibration.worst.is_empty());
        assert_eq!(insp.calibration.worst[0].latency_s, 9.0);
    }

    #[test]
    fn coverage_counts_axes_and_provenance() {
        let insp = inspect(&sample_journal());
        assert_eq!(insp.coverage.per_op.len(), 2);
        let a = &insp.coverage.per_op[0];
        assert_eq!((a.generated, a.measured, a.cache_hits), (5, 3, 1));
        assert_eq!(
            insp.coverage.per_provenance,
            vec![("random".to_string(), 6)]
        );
        // op a, loop stage, axis 0 visited values {0, 1, 2}.
        let ax = insp
            .coverage
            .axes
            .iter()
            .find(|x| x.op == "a" && x.axis == 0)
            .expect("axis row");
        assert_eq!((ax.distinct, ax.min, ax.max, ax.samples), (3, 0, 2, 5));
        let f = insp.coverage.fractions;
        assert!(
            (f.measured + f.cache_hit + f.verify_rejected + f.failed + f.other - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn empty_journal_inspects_cleanly() {
        let insp = inspect(&[]);
        assert!(insp.header.is_none());
        assert_eq!(insp.totals.candidates, 0);
        assert_eq!(insp.convergence.final_best_s, None);
        assert_eq!(insp.calibration.final_spearman, 0.0);
        assert_eq!(insp.convergence.plateau_frac, 0.0);
    }
}
