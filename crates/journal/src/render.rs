//! Plain-text rendering of an [`Inspection`] for `altc inspect`.

use crate::diagnostics::Inspection;

/// Formats a latency with a unit that keeps 3–4 significant digits.
pub(crate) fn fmt_latency(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "n/a".to_string();
    }
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn fmt_opt_latency(seconds: Option<f64>) -> String {
    seconds.map_or_else(|| "n/a".to_string(), fmt_latency)
}

/// Unicode sparkline of a descending best-so-far curve (best at the
/// right), resampled to at most `width` cells.
fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let n = values.len();
    let cells = n.min(width.max(1));
    (0..cells)
        .map(|c| {
            let i = c * n / cells;
            let t = if hi > lo {
                (values[i] - lo) / (hi - lo)
            } else {
                0.0
            };
            BARS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Renders the full text report.
pub fn render_text(insp: &Inspection) -> String {
    let mut out = String::new();
    let push = |out: &mut String, s: String| {
        out.push_str(&s);
        out.push('\n');
    };

    push(&mut out, "== search journal ==".to_string());
    if let Some(h) = &insp.header {
        push(
            &mut out,
            format!(
                "run: seed={} profile_fp={:016x} budget joint={} loop={}",
                h.seed, h.profile_fp, h.joint_budget, h.loop_budget
            ),
        );
    } else {
        push(&mut out, "run: (no header — partial journal)".to_string());
    }
    let t = &insp.totals;
    push(
        &mut out,
        format!(
            "records: {}  candidates: {}  layout visits: {}  commits: {}",
            t.records, t.candidates, t.layout_visits, t.layout_commits
        ),
    );
    push(&mut out, format!("budget consumed: {}", t.budget_consumed));
    for (name, count) in &t.outcomes {
        push(&mut out, format!("  {name:<16} {count}"));
    }

    push(&mut out, String::new());
    push(&mut out, "== convergence ==".to_string());
    let c = &insp.convergence;
    push(
        &mut out,
        format!("final best: {}", fmt_opt_latency(c.final_best_s)),
    );
    if !c.curve.is_empty() {
        let curve: Vec<f64> = c.curve.iter().map(|p| p.best_s).collect();
        push(
            &mut out,
            format!(
                "best-so-far: {}  ({} improvements)",
                sparkline(&curve, 48),
                c.curve.len()
            ),
        );
    }
    push(
        &mut out,
        format!(
            "budget to within 5% of final: {}",
            c.budget_to_within_5pct
                .map_or_else(|| "n/a".to_string(), |b| format!("{b} units")),
        ),
    );
    push(
        &mut out,
        format!(
            "budget to 95% of final quality: {}",
            c.budget_to_p95_of_final
                .map_or_else(|| "n/a".to_string(), |b| format!("{b} units")),
        ),
    );
    if let Some(pb) = c.plateau_budget {
        push(
            &mut out,
            format!(
                "plateau: last >1% improvement at unit {pb} ({:.0}% of budget spent after it)",
                c.plateau_frac * 100.0
            ),
        );
    }
    if !c.per_op.is_empty() {
        push(&mut out, "per-op sample efficiency:".to_string());
        push(
            &mut out,
            format!(
                "  {:<16} {:>8} {:>12} {:>12}",
                "op", "samples", "best", "budget@best"
            ),
        );
        for o in &c.per_op {
            push(
                &mut out,
                format!(
                    "  {:<16} {:>8} {:>12} {:>12}",
                    o.op,
                    o.samples,
                    fmt_opt_latency(o.best_s),
                    o.budget_to_best
                ),
            );
        }
    }

    push(&mut out, String::new());
    push(&mut out, "== cost-model calibration ==".to_string());
    let cal = &insp.calibration;
    push(
        &mut out,
        format!(
            "pairs: {}  final spearman: {:.3}",
            cal.pairs, cal.final_spearman
        ),
    );
    if !cal.rolling.is_empty() {
        let roll: Vec<f64> = cal.rolling.iter().map(|r| r.spearman).collect();
        let last = cal.rolling.last().map_or(0.0, |r| r.spearman);
        push(
            &mut out,
            format!(
                "rolling spearman (window 32): {}  latest {:.3}",
                sparkline(&roll, 48),
                last
            ),
        );
    }
    if !cal.table.is_empty() {
        push(
            &mut out,
            "calibration table (predicted quintile -> measured rank):".to_string(),
        );
        push(
            &mut out,
            format!(
                "  {:<10} {:>6} {:>12} {:>12}",
                "quintile", "pairs", "pred rank", "meas rank"
            ),
        );
        for b in &cal.table {
            push(
                &mut out,
                format!(
                    "  {:<10} {:>6} {:>12.1} {:>12.1}",
                    b.bin, b.pairs, b.mean_predicted_rank, b.mean_measured_rank
                ),
            );
        }
    }
    if !cal.worst.is_empty() {
        push(&mut out, "worst mispredictions:".to_string());
        for w in &cal.worst {
            push(
                &mut out,
                format!(
                    "  {} {:?}: predicted {:.4}, measured {} (rank error {:.0}%)",
                    w.op,
                    w.point,
                    w.predicted,
                    fmt_latency(w.latency_s),
                    w.rank_error * 100.0
                ),
            );
        }
    }

    push(&mut out, String::new());
    push(&mut out, "== joint-space coverage ==".to_string());
    let cov = &insp.coverage;
    let f = cov.fractions;
    push(
        &mut out,
        format!(
            "outcomes: {:.0}% measured, {:.0}% cache-hit, {:.0}% verify-rejected, {:.0}% failed, {:.0}% other",
            f.measured * 100.0,
            f.cache_hit * 100.0,
            f.verify_rejected * 100.0,
            f.failed * 100.0,
            f.other * 100.0
        ),
    );
    if !cov.per_provenance.is_empty() {
        let parts: Vec<String> = cov
            .per_provenance
            .iter()
            .map(|(p, n)| format!("{p} {n}"))
            .collect();
        push(&mut out, format!("provenance: {}", parts.join(", ")));
    }
    if !cov.per_op.is_empty() {
        push(
            &mut out,
            format!(
                "  {:<16} {:>9} {:>9} {:>6} {:>8} {:>7} {:>6}",
                "op", "generated", "measured", "cache", "rejected", "failed", "other"
            ),
        );
        for o in &cov.per_op {
            push(
                &mut out,
                format!(
                    "  {:<16} {:>9} {:>9} {:>6} {:>8} {:>7} {:>6}",
                    o.op,
                    o.generated,
                    o.measured,
                    o.cache_hits,
                    o.verify_rejected,
                    o.failed,
                    o.other
                ),
            );
        }
    }
    if !cov.axes.is_empty() {
        push(
            &mut out,
            "axis exploration (distinct values visited per knob):".to_string(),
        );
        push(
            &mut out,
            format!(
                "  {:<16} {:<6} {:>4} {:>8} {:>6} {:>6} {:>8}",
                "op", "stage", "axis", "distinct", "min", "max", "samples"
            ),
        );
        for a in &cov.axes {
            push(
                &mut out,
                format!(
                    "  {:<16} {:<6} {:>4} {:>8} {:>6} {:>6} {:>8}",
                    a.op, a.stage, a.axis, a.distinct, a.min, a.max, a.samples
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_resamples_and_scales() {
        let s = sparkline(&[4.0, 3.0, 2.0, 1.0], 4);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('█') && s.ends_with('▁'), "{s}");
        assert_eq!(sparkline(&[], 10), "");
        // constant input pins to the bottom cell rather than dividing
        // by zero.
        assert_eq!(sparkline(&[1.0, 1.0], 2), "▁▁");
    }

    #[test]
    fn fmt_latency_picks_units() {
        assert_eq!(fmt_latency(2.5), "2.500 s");
        assert_eq!(fmt_latency(2.5e-3), "2.500 ms");
        assert_eq!(fmt_latency(2.5e-6), "2.500 us");
        assert_eq!(fmt_latency(2.5e-8), "25.0 ns");
        assert_eq!(fmt_latency(f64::INFINITY), "n/a");
    }

    #[test]
    fn text_report_has_all_sections() {
        let insp = crate::diagnostics::inspect(&[]);
        let text = render_text(&insp);
        for section in [
            "== search journal ==",
            "== convergence ==",
            "== cost-model calibration ==",
            "== joint-space coverage ==",
        ] {
            assert!(text.contains(section), "missing {section}");
        }
    }
}
