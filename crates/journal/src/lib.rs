//! Search journal: full tuning-run introspection for ALT.
//!
//! `TuneResult::history` keeps only `(budget, latency)` pairs for
//! successful measurements; everything else about a search — who
//! proposed each candidate, what the cost model predicted, why the
//! verifier rejected it, which regions of the joint space were never
//! visited — evaporates when the process exits. This crate is the
//! durable record of that search:
//!
//! * [`record`] — the append-only JSONL schema: a header identifying
//!   the run, one [`record::CandidateRecord`] per candidate the tuner
//!   touched (provenance, predicted vs measured, verify V-code, cache
//!   hit/miss, fault outcome, budget index, program/profile
//!   fingerprints), layout visits/commits, and a summary.
//! * [`sink`] — the cheap [`Journal`] handle (noop/memory/JSONL,
//!   mirroring `alt_telemetry::Telemetry`) plus the reader.
//! * [`diagnostics`] — convergence, cost-model calibration, and
//!   joint-space coverage computed from a journal.
//! * [`render`] / [`html`] — the `altc inspect` text report and the
//!   self-contained single-file HTML report.
//!
//! Journals are deterministic artifacts: `--jobs N` runs are
//! journal-bit-identical to sequential runs, and an interrupted run's
//! journal concatenated with its resumed continuation equals the
//! uninterrupted journal byte-for-byte. The fingerprint-keyed schema
//! is deliberately the seed format for the content-addressed tuning
//! result store (ROADMAP item 1) and the warm-start tuning database
//! (item 5).

pub mod diagnostics;
pub mod html;
pub mod record;
pub mod render;
pub mod sink;

pub use diagnostics::{inspect, Calibration, Convergence, Coverage, Inspection, Totals};
pub use html::render_html;
pub use record::{
    finite, outcome, provenance, CandidateRecord, JournalHeader, JournalRecord, JournalSummary,
    LayoutCommitRecord, LayoutVisitRecord, JOURNAL_VERSION,
};
pub use render::render_text;
pub use sink::{parse_journal, read_journal, Journal, JournalSink, JsonlJournal, MemoryJournal};
