//! Self-contained single-file HTML report for `altc inspect --html`.
//!
//! Everything is inline — CSS in a `<style>` block, charts as inline
//! SVG generated here — so the file opens offline and never loads a
//! remote resource. CI asserts the absence of external URLs.

use crate::diagnostics::Inspection;
use crate::render::fmt_latency;

const STYLE: &str = "\
body{font-family:ui-monospace,Menlo,Consolas,monospace;margin:2rem auto;max-width:60rem;\
color:#1b1f24;background:#fcfcfc;font-size:14px}\
h1{font-size:1.3rem}h2{font-size:1.05rem;border-bottom:1px solid #d0d7de;padding-bottom:.25rem;\
margin-top:2rem}\
table{border-collapse:collapse;margin:.5rem 0}\
th,td{border:1px solid #d0d7de;padding:.25rem .6rem;text-align:right}\
th{background:#f0f2f5}td:first-child,th:first-child{text-align:left}\
svg{background:#fff;border:1px solid #d0d7de;margin:.5rem 0}\
.kv{margin:.15rem 0}.kv b{display:inline-block;min-width:18rem;font-weight:600}\
.muted{color:#57606a}";

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn kv(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!(
        "<div class=\"kv\"><b>{}</b>{}</div>\n",
        esc(key),
        esc(value)
    ));
}

/// Inline SVG step plot of the best-so-far curve (x = budget units,
/// y = best latency, lower is better).
fn convergence_svg(insp: &Inspection) -> String {
    let curve = &insp.convergence.curve;
    if curve.is_empty() {
        return "<p class=\"muted\">no measured candidates</p>".to_string();
    }
    let (w, h, pad) = (640.0_f64, 160.0_f64, 10.0_f64);
    let x_max = insp
        .totals
        .budget_consumed
        .max(curve.last().map_or(1, |p| p.budget)) as f64;
    let y_lo = curve.iter().map(|p| p.best_s).fold(f64::INFINITY, f64::min);
    let y_hi = curve.iter().map(|p| p.best_s).fold(0.0_f64, f64::max);
    let sx = |b: f64| pad + (w - 2.0 * pad) * b / x_max.max(1.0);
    // Top of the plot = lowest (best) latency, bottom = worst.
    let sy = |v: f64| {
        let t = if y_hi > y_lo {
            (v - y_lo) / (y_hi - y_lo)
        } else {
            0.5
        };
        pad + (h - 2.0 * pad) * t
    };
    // Step polyline: hold each best until the next improvement.
    let mut pts = Vec::new();
    let mut prev_y = sy(curve[0].best_s);
    for p in curve {
        let x = sx(p.budget as f64);
        pts.push(format!("{x:.1},{prev_y:.1}"));
        prev_y = sy(p.best_s);
        pts.push(format!("{x:.1},{prev_y:.1}"));
    }
    pts.push(format!("{:.1},{prev_y:.1}", sx(x_max)));
    format!(
        "<svg viewBox=\"0 0 {w:.0} {h:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" role=\"img\" \
         aria-label=\"best-so-far latency over budget\">\
         <polyline points=\"{}\" fill=\"none\" stroke=\"#0969da\" stroke-width=\"1.5\"/></svg>\
         <p class=\"muted\">x: 0..{} budget units; y: {} (top) .. {} (bottom)</p>",
        pts.join(" "),
        x_max as u64,
        esc(&fmt_latency(y_lo)),
        esc(&fmt_latency(y_hi)),
    )
}

/// Inline SVG scatter of predicted score vs measured latency.
fn calibration_svg(insp: &Inspection) -> String {
    let pts = &insp.calibration.scatter;
    if pts.len() < 2 {
        return "<p class=\"muted\">not enough (predicted, measured) pairs</p>".to_string();
    }
    let (w, h, pad) = (320.0_f64, 320.0_f64, 12.0_f64);
    let px: Vec<f64> = pts.iter().map(|p| p.predicted).collect();
    let py: Vec<f64> = pts.iter().map(|p| p.latency_s).collect();
    let (x_lo, x_hi) = (
        px.iter().copied().fold(f64::INFINITY, f64::min),
        px.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let (y_lo, y_hi) = (
        py.iter().copied().fold(f64::INFINITY, f64::min),
        py.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let mut circles = String::new();
    for p in pts {
        let tx = if x_hi > x_lo {
            (p.predicted - x_lo) / (x_hi - x_lo)
        } else {
            0.5
        };
        let ty = if y_hi > y_lo {
            (p.latency_s - y_lo) / (y_hi - y_lo)
        } else {
            0.5
        };
        let cx = pad + (w - 2.0 * pad) * tx;
        let cy = pad + (h - 2.0 * pad) * ty;
        circles.push_str(&format!(
            "<circle cx=\"{cx:.1}\" cy=\"{cy:.1}\" r=\"2.5\" fill=\"#0969da\" fill-opacity=\"0.55\"/>"
        ));
    }
    format!(
        "<svg viewBox=\"0 0 {w:.0} {h:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" role=\"img\" \
         aria-label=\"predicted score vs measured latency\">{circles}</svg>\
         <p class=\"muted\">x: predicted score (right = model says better); \
         y: measured latency (top = faster). A calibrated model slopes down-right.</p>"
    )
}

/// Renders the complete self-contained HTML report.
pub fn render_html(insp: &Inspection) -> String {
    let mut out = String::new();
    out.push_str("<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    out.push_str("<title>ALT search journal</title>\n");
    out.push_str(&format!("<style>{STYLE}</style>\n</head><body>\n"));
    out.push_str("<h1>ALT search journal</h1>\n");

    if let Some(h) = &insp.header {
        kv(&mut out, "seed", &h.seed.to_string());
        kv(
            &mut out,
            "profile fingerprint",
            &format!("{:016x}", h.profile_fp),
        );
        kv(
            &mut out,
            "budget (joint + loop)",
            &format!("{} + {}", h.joint_budget, h.loop_budget),
        );
    }
    let t = &insp.totals;
    kv(&mut out, "records", &t.records.to_string());
    kv(&mut out, "candidates", &t.candidates.to_string());
    kv(
        &mut out,
        "layout visits / commits",
        &format!("{} / {}", t.layout_visits, t.layout_commits),
    );
    kv(&mut out, "budget consumed", &t.budget_consumed.to_string());

    out.push_str("<h2>Convergence</h2>\n");
    out.push_str(&convergence_svg(insp));
    let c = &insp.convergence;
    kv(
        &mut out,
        "final best",
        &c.final_best_s
            .map_or_else(|| "n/a".to_string(), fmt_latency),
    );
    kv(
        &mut out,
        "budget to within 5% of final",
        &c.budget_to_within_5pct
            .map_or_else(|| "n/a".to_string(), |b| format!("{b} units")),
    );
    kv(
        &mut out,
        "budget to 95% of final quality",
        &c.budget_to_p95_of_final
            .map_or_else(|| "n/a".to_string(), |b| format!("{b} units")),
    );
    if let Some(pb) = c.plateau_budget {
        kv(
            &mut out,
            "plateau",
            &format!(
                "last >1% improvement at unit {pb}; {:.0}% of budget after it",
                c.plateau_frac * 100.0
            ),
        );
    }
    if !c.per_op.is_empty() {
        out.push_str(
            "<table><tr><th>op</th><th>samples</th><th>best</th><th>budget@best</th></tr>\n",
        );
        for o in &c.per_op {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                esc(&o.op),
                o.samples,
                esc(&o.best_s.map_or_else(|| "n/a".to_string(), fmt_latency)),
                o.budget_to_best
            ));
        }
        out.push_str("</table>\n");
    }

    out.push_str("<h2>Cost-model calibration</h2>\n");
    let cal = &insp.calibration;
    kv(&mut out, "pairs", &cal.pairs.to_string());
    kv(
        &mut out,
        "final Spearman",
        &format!("{:.3}", cal.final_spearman),
    );
    out.push_str(&calibration_svg(insp));
    if !cal.table.is_empty() {
        out.push_str(
            "<table><tr><th>predicted quintile</th><th>pairs</th>\
             <th>mean predicted rank</th><th>mean measured rank</th></tr>\n",
        );
        for b in &cal.table {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{:.1}</td><td>{:.1}</td></tr>\n",
                b.bin, b.pairs, b.mean_predicted_rank, b.mean_measured_rank
            ));
        }
        out.push_str("</table>\n");
    }
    if !cal.worst.is_empty() {
        out.push_str(
            "<table><tr><th>op</th><th>point</th><th>predicted</th><th>measured</th>\
             <th>rank error</th></tr>\n",
        );
        for w in &cal.worst {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{:?}</td><td>{:.4}</td><td>{}</td><td>{:.0}%</td></tr>\n",
                esc(&w.op),
                w.point,
                w.predicted,
                esc(&fmt_latency(w.latency_s)),
                w.rank_error * 100.0
            ));
        }
        out.push_str("</table>\n");
    }

    out.push_str("<h2>Joint-space coverage</h2>\n");
    let cov = &insp.coverage;
    let f = cov.fractions;
    kv(
        &mut out,
        "outcome fractions",
        &format!(
            "{:.0}% measured, {:.0}% cache-hit, {:.0}% verify-rejected, {:.0}% failed, {:.0}% other",
            f.measured * 100.0,
            f.cache_hit * 100.0,
            f.verify_rejected * 100.0,
            f.failed * 100.0,
            f.other * 100.0
        ),
    );
    if !cov.per_provenance.is_empty() {
        let parts: Vec<String> = cov
            .per_provenance
            .iter()
            .map(|(p, n)| format!("{p} {n}"))
            .collect();
        kv(&mut out, "provenance", &parts.join(", "));
    }
    if !cov.per_op.is_empty() {
        out.push_str(
            "<table><tr><th>op</th><th>generated</th><th>measured</th><th>cache</th>\
             <th>verify-rejected</th><th>failed</th><th>other</th></tr>\n",
        );
        for o in &cov.per_op {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                esc(&o.op),
                o.generated,
                o.measured,
                o.cache_hits,
                o.verify_rejected,
                o.failed,
                o.other
            ));
        }
        out.push_str("</table>\n");
    }
    if !cov.axes.is_empty() {
        out.push_str(
            "<table><tr><th>op</th><th>stage</th><th>axis</th><th>distinct</th>\
             <th>min</th><th>max</th><th>samples</th></tr>\n",
        );
        for a in &cov.axes {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                esc(&a.op),
                esc(&a.stage),
                a.axis,
                a.distinct,
                a.min,
                a.max,
                a.samples
            ));
        }
        out.push_str("</table>\n");
    }

    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::inspect;
    use crate::record::{outcome, provenance, CandidateRecord, JournalRecord};

    fn sample() -> Vec<JournalRecord> {
        (0..8)
            .map(|i| {
                JournalRecord::Candidate(CandidateRecord {
                    op: "conv<&>#0".into(),
                    stage: "loop".into(),
                    round: 1,
                    provenance: provenance::RANDOM.into(),
                    point: vec![i, 1],
                    outcome: outcome::MEASURED.into(),
                    predicted: Some(-(i as f64)),
                    latency_s: Some(1.0 + i as f64),
                    vcode: None,
                    error: None,
                    attempts: 1,
                    budget_end: i + 1,
                    program_fp: Some(i),
                    cache_key: Some(i),
                })
            })
            .collect()
    }

    #[test]
    fn html_is_self_contained() {
        let html = render_html(&inspect(&sample()));
        assert!(html.starts_with("<!doctype html>"));
        for needle in ["http://", "https://", "<script src", "<link"] {
            assert!(!html.contains(needle), "external reference `{needle}`");
        }
        assert!(html.contains("<svg"), "charts must be inline SVG");
        assert!(html.contains("<style>"), "styles must be inline");
    }

    #[test]
    fn html_escapes_op_names() {
        let html = render_html(&inspect(&sample()));
        assert!(
            html.contains("conv&lt;&amp;&gt;#0"),
            "op name must be escaped"
        );
        assert!(!html.contains("conv<&>#0"));
    }

    #[test]
    fn empty_inspection_renders() {
        let html = render_html(&inspect(&[]));
        assert!(html.contains("no measured candidates"));
    }
}
