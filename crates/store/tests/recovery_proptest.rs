//! Property tests for crash recovery: for ANY record set and ANY
//! injected fault point, recovery must yield exactly the longest valid
//! prefix, `verify` must report the quarantined tail, and a subsequent
//! writer must append cleanly — ending byte-identical to the store an
//! uninterrupted run would have produced (ISSUE 7, satellite 3).
//!
//! The vendored proptest is deterministic (fixed seed derivation, no
//! shrinking), so failures reproduce exactly.

use std::path::PathBuf;
use std::sync::Arc;

use alt_store::faults::{FailAppend, IoFault};
use alt_store::format::{FRAME_OVERHEAD, HEADER_LEN};
use alt_store::{kind, verify_path, Corruption, HeaderCheck, Store};
use proptest::prelude::*;

/// SplitMix64: deterministic payload material from a sampled seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic record set: unique (kind, key) pairs with payloads
/// of varying length (including empty) derived from `seed`.
fn records(seed: u64, n: usize) -> Vec<(u8, u64, Vec<u8>)> {
    let mut state = seed;
    (0..n)
        .map(|i| {
            let k = if i % 3 == 2 {
                kind::WINNER
            } else {
                kind::MEASUREMENT
            };
            // Multiplying by an odd constant keeps keys distinct per i.
            let key = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let len = (splitmix(&mut state) % 64) as usize;
            let payload: Vec<u8> = (0..len).map(|_| splitmix(&mut state) as u8).collect();
            (k, key, payload)
        })
        .collect()
}

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "alt-store-recovery-proptest-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).expect("mkdir");
    d.join("store.alts")
}

/// Builds the store an uninterrupted run would produce and returns its
/// raw segment bytes.
fn uninterrupted(path: &PathBuf, recs: &[(u8, u64, Vec<u8>)]) -> Vec<u8> {
    let store = Store::open(path).expect("open uninterrupted store");
    for (k, key, p) in recs {
        assert!(store.put(*k, *key, p).expect("put"));
    }
    drop(store);
    std::fs::read(path).expect("read uninterrupted segment")
}

/// Byte length of header + the first `upto` frames.
fn prefix_len(recs: &[(u8, u64, Vec<u8>)], upto: usize) -> usize {
    HEADER_LEN
        + recs[..upto]
            .iter()
            .map(|(_, _, p)| FRAME_OVERHEAD + p.len())
            .sum::<usize>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A write torn at ANY append, keeping ANY strict prefix of the
    /// frame, recovers to exactly the longest valid prefix; the torn
    /// bytes land in quarantine; re-appending the lost records makes
    /// the segment byte-identical to the uninterrupted store's file.
    #[test]
    fn torn_append_recovers_to_the_longest_valid_prefix(
        seed in any::<u64>(),
        n in 1usize..9,
        crash_sel in 0usize..64,
        keep_frac in 0.0f64..1.0,
    ) {
        let crash_at = crash_sel % n;
        let recs = records(seed, n);
        let upath = tmp(&format!("torn-u-{seed}-{n}-{crash_at}"));
        let ubytes = uninterrupted(&upath, &recs);
        prop_assert_eq!(ubytes.len(), prefix_len(&recs, n));

        // Crash: the append of record `crash_at` reaches disk only
        // partially (keep < frame length bytes), then the process dies.
        let frame_len = FRAME_OVERHEAD + recs[crash_at].2.len();
        let keep = (keep_frac * frame_len as f64) as usize;
        prop_assert!(keep < frame_len);
        let cpath = tmp(&format!("torn-c-{seed}-{n}-{crash_at}"));
        let hook = Arc::new(FailAppend::new(crash_at as u64, IoFault::Torn { keep }));
        {
            let c = Store::open_with_faults(&cpath, hook.clone()).expect("open crashed store");
            for (i, (k, key, p)) in recs.iter().enumerate() {
                let r = c.put(*k, *key, p);
                if i < crash_at {
                    prop_assert!(r.expect("pre-crash put"));
                } else {
                    prop_assert!(r.is_err());
                    // A torn append wedges the handle: later puts must
                    // refuse rather than write after a gap.
                    prop_assert!(c.is_wedged());
                    prop_assert!(c.put(kind::MEASUREMENT, u64::MAX, b"x").is_err());
                    break;
                }
            }
            prop_assert_eq!(hook.fired(), 1);
        }

        // Read-only deep check sees the valid prefix plus the torn tail.
        let v = verify_path(&cpath).expect("verify crashed segment");
        prop_assert_eq!(v.header, HeaderCheck::Ok);
        prop_assert_eq!(v.valid_records, crash_at);
        prop_assert_eq!(v.valid_bytes as usize, prefix_len(&recs, crash_at));
        prop_assert_eq!(v.tail_bytes as usize, keep);
        prop_assert_eq!(v.clean(), keep == 0);
        if keep > 0 {
            prop_assert_eq!(v.corruption, Some(Corruption::TornFrame));
        }

        // Writer reopen: quarantine the tail, keep exactly the prefix.
        let recovered = Store::open(&cpath).expect("recovering open");
        let rec = recovered.recovery().clone();
        prop_assert_eq!(rec.valid_records, crash_at);
        prop_assert_eq!(rec.corrupt_events, u64::from(keep > 0));
        prop_assert_eq!(rec.quarantined_bytes as usize, keep);
        prop_assert_eq!(rec.pending_tail_bytes, 0);
        for (i, (k, key, p)) in recs.iter().enumerate() {
            if i < crash_at {
                let got = recovered.get(*k, *key);
                prop_assert_eq!(got.as_deref(), Some(p.as_slice()));
            } else {
                prop_assert!(recovered.get(*k, *key).is_none());
            }
        }
        let cbytes = std::fs::read(&cpath).expect("read recovered segment");
        prop_assert_eq!(&cbytes[..], &ubytes[..prefix_len(&recs, crash_at)]);
        prop_assert_eq!(recovered.stats().quarantine_bytes as usize, keep);

        // The next run appends cleanly: re-putting the lost records
        // reproduces the uninterrupted store byte for byte.
        for (k, key, p) in &recs[crash_at..] {
            prop_assert!(recovered.put(*k, *key, p).expect("post-recovery put"));
        }
        drop(recovered);
        let finalbytes = std::fs::read(&cpath).expect("read final segment");
        prop_assert_eq!(&finalbytes[..], &ubytes[..]);
        let v = verify_path(&cpath).expect("verify final segment");
        prop_assert!(v.clean());
        prop_assert_eq!(v.valid_records, n);
        // A quarantine sibling from the past recovery is evidence, not
        // dirt.
        prop_assert_eq!(v.quarantine_bytes as usize, keep);
    }

    /// ENOSPC at ANY append loses only that one record, does not wedge
    /// the handle, and a retry converges on the exact byte stream an
    /// uninterrupted run would have written.
    #[test]
    fn enospc_is_survivable_and_a_retry_converges(
        seed in any::<u64>(),
        n in 1usize..9,
        crash_sel in 0usize..64,
    ) {
        let crash_at = crash_sel % n;
        let recs = records(seed, n);
        let upath = tmp(&format!("enospc-u-{seed}-{n}-{crash_at}"));
        let ubytes = uninterrupted(&upath, &recs);

        let cpath = tmp(&format!("enospc-c-{seed}-{n}-{crash_at}"));
        let hook = Arc::new(FailAppend::new(crash_at as u64, IoFault::Enospc));
        let c = Store::open_with_faults(&cpath, hook).expect("open store");
        for (i, (k, key, p)) in recs.iter().enumerate() {
            let r = c.put(*k, *key, p);
            if i == crash_at {
                prop_assert!(r.is_err());
                prop_assert!(!c.is_wedged());
                // Nothing of the failed frame reached the segment, so an
                // immediate retry succeeds and keeps file order intact.
                prop_assert!(c.put(*k, *key, p).expect("retry after ENOSPC"));
            } else {
                prop_assert!(r.expect("put"));
            }
        }
        drop(c);
        let cbytes = std::fs::read(&cpath).expect("read segment");
        prop_assert_eq!(&cbytes[..], &ubytes[..]);
        prop_assert!(verify_path(&cpath).expect("verify").clean());
    }

    /// Truncating the segment at ANY byte (a crash model coarser than
    /// the append hook: tears may land anywhere) verifies to exactly
    /// the records whose frames fit entirely within the cut.
    #[test]
    fn any_byte_truncation_verifies_to_the_longest_valid_prefix(
        seed in any::<u64>(),
        n in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let recs = records(seed, n);
        let upath = tmp(&format!("cut-u-{seed}-{n}"));
        let ubytes = uninterrupted(&upath, &recs);
        let cut = (cut_frac * ubytes.len() as f64) as usize;

        let tpath = tmp(&format!("cut-t-{seed}-{n}"));
        std::fs::write(&tpath, &ubytes[..cut]).expect("write truncated copy");
        let v = verify_path(&tpath).expect("verify truncated segment");
        if cut < HEADER_LEN {
            prop_assert_eq!(v.header, HeaderCheck::Truncated);
            prop_assert_eq!(v.valid_records, 0);
            prop_assert_eq!(v.tail_bytes as usize, cut);
        } else {
            let fit = (0..=n)
                .rev()
                .find(|&m| prefix_len(&recs, m) <= cut)
                .expect("the bare header always fits");
            prop_assert_eq!(v.header, HeaderCheck::Ok);
            prop_assert_eq!(v.valid_records, fit);
            prop_assert_eq!(v.valid_bytes as usize, prefix_len(&recs, fit));
            prop_assert_eq!(v.tail_bytes as usize, cut - prefix_len(&recs, fit));
            prop_assert_eq!(v.clean(), cut == prefix_len(&recs, fit));

            // A writer open on the truncated copy recovers that same
            // prefix and accepts fresh appends.
            let s = Store::open(&tpath).expect("recovering open");
            prop_assert_eq!(s.recovery().valid_records, fit);
            prop_assert!(s.put(kind::WINNER, u64::MAX, b"fresh").expect("append"));
            prop_assert!(verify_path(&tpath).expect("verify").clean());
        }
    }

    /// Flipping ANY single byte in the record stream is caught by the
    /// checksum (or frame bounds), never silently served; recovery plus
    /// re-puts reconverge on the uninterrupted byte stream.
    #[test]
    fn any_flipped_byte_is_detected_and_requarantined(
        seed in any::<u64>(),
        n in 1usize..8,
        flip_sel in 0usize..4096,
    ) {
        let recs = records(seed, n);
        let upath = tmp(&format!("flip-u-{seed}-{n}"));
        let ubytes = uninterrupted(&upath, &recs);
        let body = ubytes.len() - HEADER_LEN;
        prop_assert!(body > 0);
        let pos = HEADER_LEN + flip_sel % body;

        let fpath = tmp(&format!("flip-f-{seed}-{n}"));
        let mut fbytes = ubytes.clone();
        fbytes[pos] ^= 0xFF;
        std::fs::write(&fpath, &fbytes).expect("write flipped copy");

        let v = verify_path(&fpath).expect("verify flipped segment");
        prop_assert!(!v.clean());
        prop_assert!(v.valid_records < n);
        prop_assert!(v.corruption.is_some());
        // The scan stops no later than the frame holding the flip.
        prop_assert!((v.valid_bytes as usize) <= pos);

        let s = Store::open(&fpath).expect("recovering open");
        let valid = s.recovery().valid_records;
        prop_assert_eq!(valid, v.valid_records);
        for (i, (k, key, p)) in recs.iter().enumerate() {
            // Records past the flip are gone, never served corrupted.
            let got = s.get(*k, *key);
            if i < valid {
                prop_assert_eq!(got.as_deref(), Some(p.as_slice()));
            } else {
                prop_assert!(got.is_none());
            }
            prop_assert_eq!(s.put(*k, *key, p).expect("re-put"), i >= valid);
        }
        drop(s);
        let finalbytes = std::fs::read(&fpath).expect("read final segment");
        prop_assert_eq!(&finalbytes[..], &ubytes[..]);
    }
}
