//! `alt-store`: a durable, crash-safe, content-addressed store of tuning
//! results (ROADMAP item 1, first half).
//!
//! The store maps the PR 4 fingerprints — `compose_cache_key(profile_fp,
//! program_fp)` for measurements, a task fingerprint for winning
//! schedules — to byte payloads, persisted in an append-only segment
//! file. Nothing here knows what the payloads mean: the codecs live next
//! to the types they serialize (`alt_sim` for measurement counters,
//! `alt_autotune` for winner records), keeping this crate dependent on
//! `alt-error` alone.
//!
//! Crash-safety model (see `format` for the byte layout):
//!
//! * every record is length-prefixed and FNV-1a-checksummed, so a torn
//!   append is detectable, and appends are the only mutation — a crash
//!   can only damage the file's tail;
//! * opening a writer runs a recovery scan that truncates the segment to
//!   its longest valid prefix, moving the corrupt tail to a sibling
//!   `.quarantine` file instead of panicking (or silently dropping
//!   evidence);
//! * whole-file rewrites (creation, [`Store::gc`]) go through
//!   [`atomic::write`] (temp file + fsync + rename);
//! * concurrent writer *processes* serialize on an advisory `.lock`
//!   file; readers never lock — a concurrently-appended half-frame is
//!   simply not part of the store yet;
//! * an incompatible schema version is rejected with a typed error, not
//!   reinterpreted.
//!
//! The write and open-read paths accept an injectable fault hook
//! ([`faults::IoFaultHook`]) so recovery is property-tested against torn
//! writes, ENOSPC and partial reads rather than hoped-for.

pub mod atomic;
pub mod faults;
pub mod format;
mod lock;

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use alt_error::AltError;
use alt_telemetry::CounterRegistry;

use faults::{IoFault, IoFaultHook};
pub use format::{Corruption, HeaderCheck, RawRecord, STORE_VERSION};
use lock::WriterLock;

/// Record kind tags. Append-only: tags are part of the on-disk contract.
pub mod kind {
    /// A memoized simulation result: key = composed cache key
    /// (profile fingerprint × program fingerprint), payload = the
    /// fingerprint pair plus the simulator counters
    /// (`alt_sim::encode_measurement`).
    pub const MEASUREMENT: u8 = 1;
    /// A finished tuning run's winner: key = task fingerprint, payload =
    /// the replayable layout/schedule decisions plus provenance
    /// (`alt_autotune::winner`).
    pub const WINNER: u8 = 2;

    /// Human-readable name of a kind tag.
    pub fn name(kind: u8) -> &'static str {
        match kind {
            MEASUREMENT => "measurement",
            WINNER => "winner",
            _ => "unknown",
        }
    }
}

/// What the open-time recovery scan found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records in the valid prefix.
    pub valid_records: usize,
    /// Corruption events handled (0 or 1 per open: the crash model makes
    /// corruption a single contiguous tail).
    pub corrupt_events: u64,
    /// Bytes moved to the `.quarantine` sibling by this open (writer
    /// opens only; read-only opens never mutate).
    pub quarantined_bytes: u64,
    /// Corrupt tail bytes observed but left in place (read-only opens).
    pub pending_tail_bytes: u64,
    /// What broke the first invalid frame, when one was found.
    pub corruption: Option<Corruption>,
}

/// Aggregate statistics for `altc store stats`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Total records.
    pub records: usize,
    /// Measurement records.
    pub measurements: usize,
    /// Winner records.
    pub winners: usize,
    /// Records of kinds this build does not know (forward compatibility:
    /// they are preserved, reported, and otherwise ignored).
    pub unknown: usize,
    /// Payload bytes across all records.
    pub payload_bytes: u64,
    /// Segment file size in bytes (header + frames).
    pub file_bytes: u64,
    /// Size of the sibling `.quarantine` file, if any.
    pub quarantine_bytes: u64,
    /// Recovery outcome of this handle's open.
    pub recovery: RecoveryReport,
}

/// Outcome of [`verify_path`]: a read-only deep check of a segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Header validation outcome.
    pub header: HeaderCheck,
    /// Records in the valid prefix.
    pub valid_records: usize,
    /// Bytes of the valid prefix (header included).
    pub valid_bytes: u64,
    /// Corrupt tail bytes still in the segment (0 for a clean or
    /// recovered file).
    pub tail_bytes: u64,
    /// What broke the first invalid frame, when the tail is non-empty.
    pub corruption: Option<Corruption>,
    /// Size of the sibling `.quarantine` file (evidence of a past
    /// recovery; informational, not corruption).
    pub quarantine_bytes: u64,
}

impl VerifyReport {
    /// Whether the segment itself is fully valid (a quarantine sibling
    /// from a past recovery does not make it dirty).
    pub fn clean(&self) -> bool {
        self.header == HeaderCheck::Ok && self.tail_bytes == 0
    }
}

/// Outcome of [`Store::gc`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GcReport {
    /// Records in the compacted segment.
    pub records: usize,
    /// Segment bytes before compaction.
    pub bytes_before: u64,
    /// Segment bytes after compaction.
    pub bytes_after: u64,
    /// Quarantine bytes deleted.
    pub quarantine_removed: u64,
}

struct Inner {
    /// Latest payload per (kind, key).
    map: HashMap<(u8, u64), Arc<[u8]>>,
    /// Insertion order of the map's keys (= file order; puts dedupe).
    order: Vec<(u8, u64)>,
    /// Append handle (writers only).
    file: Option<std::fs::File>,
    /// Advisory lock, held for the writer's lifetime.
    _lock: Option<WriterLock>,
    /// Appends attempted over this handle's lifetime (fault-hook seq).
    seq: u64,
    /// Current segment length in bytes.
    file_bytes: u64,
}

/// A handle to one on-disk store. Thread-safe: share it via [`Arc`]
/// between the simulation cache, the tuner, and worker threads.
pub struct Store {
    path: PathBuf,
    read_only: bool,
    inner: Mutex<Inner>,
    recovery: RecoveryReport,
    faults: Option<Arc<dyn IoFaultHook>>,
    /// Set after a torn append: the file now ends in a half-frame, so
    /// further appends would be unreachable past the corruption. The
    /// store refuses them until the next open recovers the tail —
    /// exactly what a crashed process cannot do either.
    wedged: AtomicBool,
    /// Wall-clock I/O latency histograms (append/fsync/get/gc), when the
    /// timing layer attached a registry. Observation-only: never read by
    /// the store itself, never persisted.
    registry: Mutex<Option<Arc<CounterRegistry>>>,
}

fn locked(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn quarantine_path(segment: &Path) -> PathBuf {
    let mut os = segment.as_os_str().to_owned();
    os.push(".quarantine");
    PathBuf::from(os)
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> AltError {
    AltError::Store {
        detail: format!("{what} {}: {e}", path.display()),
    }
}

impl Store {
    /// Opens (creating if absent) a store for reading and writing:
    /// acquires the advisory writer lock, runs the recovery scan, and
    /// truncates away any corrupt tail (quarantining its bytes).
    pub fn open(path: impl AsRef<Path>) -> Result<Store, AltError> {
        Self::open_impl(path.as_ref(), false, None)
    }

    /// [`Store::open`] with an injectable I/O fault hook (tests; the
    /// `altc --faults` path wires a seeded rate-based hook through
    /// here).
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        hook: Arc<dyn IoFaultHook>,
    ) -> Result<Store, AltError> {
        Self::open_impl(path.as_ref(), false, Some(hook))
    }

    /// Opens a store read-only: no lock, no mutation. A corrupt tail is
    /// reported (see [`Store::recovery`]) but left in place for the next
    /// writer to recover.
    pub fn open_readonly(path: impl AsRef<Path>) -> Result<Store, AltError> {
        Self::open_impl(path.as_ref(), true, None)
    }

    fn open_impl(
        path: &Path,
        read_only: bool,
        faults: Option<Arc<dyn IoFaultHook>>,
    ) -> Result<Store, AltError> {
        let lock = if read_only {
            None
        } else {
            Some(WriterLock::acquire(path, lock::LOCK_WAIT)?)
        };
        let mut bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("reading store segment", path, e)),
        };
        if let Some(hook) = &faults {
            if let Some(keep) = hook.on_read(bytes.len()) {
                bytes.truncate(keep);
            }
        }
        let mut recovery = RecoveryReport::default();
        let scan = if bytes.is_empty() {
            if read_only {
                return Err(AltError::Store {
                    detail: format!("no store segment at {}", path.display()),
                });
            }
            atomic::write(path, &format::encode_header())
                .map_err(|e| io_err("creating store segment", path, e))?;
            format::Scan {
                records: Vec::new(),
                valid_len: format::HEADER_LEN,
                corrupt: None,
            }
        } else {
            match format::check_header(&bytes) {
                HeaderCheck::Ok => {}
                HeaderCheck::BadMagic => {
                    return Err(AltError::Store {
                        detail: format!("{} is not a store segment (bad magic)", path.display()),
                    })
                }
                HeaderCheck::BadVersion(v) => {
                    return Err(AltError::Store {
                        detail: format!(
                            "{} has incompatible schema v{v} (this build supports \
                             v{STORE_VERSION}); re-tune into a fresh store",
                            path.display()
                        ),
                    })
                }
                HeaderCheck::Truncated => {
                    // Shorter than a header: the whole file is a torn
                    // tail. Quarantine it and start fresh (writers), or
                    // report it (read-only).
                    if read_only {
                        return Ok(Store {
                            path: path.to_path_buf(),
                            read_only,
                            inner: Mutex::new(Inner {
                                map: HashMap::new(),
                                order: Vec::new(),
                                file: None,
                                _lock: None,
                                seq: 0,
                                file_bytes: bytes.len() as u64,
                            }),
                            recovery: RecoveryReport {
                                corrupt_events: 1,
                                pending_tail_bytes: bytes.len() as u64,
                                corruption: Some(Corruption::TornFrame),
                                ..RecoveryReport::default()
                            },
                            faults,
                            wedged: AtomicBool::new(false),
                            registry: Mutex::new(None),
                        });
                    }
                    Self::quarantine(path, &bytes)?;
                    recovery.corrupt_events = 1;
                    recovery.quarantined_bytes = bytes.len() as u64;
                    recovery.corruption = Some(Corruption::TornFrame);
                    atomic::write(path, &format::encode_header())
                        .map_err(|e| io_err("re-creating store segment", path, e))?;
                    bytes.clear();
                }
            }
            if bytes.is_empty() {
                format::Scan {
                    records: Vec::new(),
                    valid_len: format::HEADER_LEN,
                    corrupt: None,
                }
            } else {
                format::scan_records(&bytes)
            }
        };
        let tail = bytes.len().saturating_sub(scan.valid_len) as u64;
        if tail > 0 {
            recovery.corrupt_events += 1;
            recovery.corruption = scan.corrupt;
            if read_only {
                recovery.pending_tail_bytes = tail;
            } else {
                Self::quarantine(path, &bytes[scan.valid_len..])?;
                recovery.quarantined_bytes += tail;
            }
        }
        recovery.valid_records = scan.records.len();
        let mut map = HashMap::with_capacity(scan.records.len());
        let mut order = Vec::with_capacity(scan.records.len());
        for r in &scan.records {
            let id = (r.kind, r.key);
            if map
                .insert(id, Arc::<[u8]>::from(r.payload.as_slice()))
                .is_none()
            {
                order.push(id);
            }
        }
        let (file, file_bytes) = if read_only {
            (None, bytes.len() as u64)
        } else {
            let f = OpenOptions::new()
                .append(true)
                .open(path)
                .map_err(|e| io_err("opening store segment for append", path, e))?;
            if tail > 0 {
                // Drop the quarantined tail from the segment itself.
                f.set_len(scan.valid_len as u64)
                    .map_err(|e| io_err("truncating corrupt tail of", path, e))?;
                f.sync_all()
                    .map_err(|e| io_err("syncing recovered segment", path, e))?;
            }
            (Some(f), scan.valid_len as u64)
        };
        Ok(Store {
            path: path.to_path_buf(),
            read_only,
            inner: Mutex::new(Inner {
                map,
                order,
                file,
                _lock: lock,
                seq: 0,
                file_bytes,
            }),
            recovery,
            faults,
            wedged: AtomicBool::new(false),
            registry: Mutex::new(None),
        })
    }

    /// Appends `bytes` to the sibling quarantine file.
    fn quarantine(segment: &Path, bytes: &[u8]) -> Result<(), AltError> {
        let qpath = quarantine_path(segment);
        let mut f = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&qpath)
            .map_err(|e| io_err("opening quarantine file", &qpath, e))?;
        f.write_all(bytes)
            .and_then(|()| f.sync_data())
            .map_err(|e| io_err("writing quarantine file", &qpath, e))
    }

    /// The segment path this handle is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether this handle was opened read-only.
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// What the open-time recovery scan found and did.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Whether a torn append has wedged this handle (see [`Store::put`]).
    pub fn is_wedged(&self) -> bool {
        self.wedged.load(Ordering::Relaxed)
    }

    /// Attaches a wall-clock latency registry: reads land in
    /// `store.get_us`, appends in `store.append_us` (with the fsync
    /// portion broken out as `store.fsync_us`), and compactions in
    /// `store.gc_us`. Pure observation — it never changes what the store
    /// returns, appends, or errors.
    pub fn attach_registry(&self, registry: Arc<CounterRegistry>) {
        *self.registry.lock().unwrap_or_else(|e| e.into_inner()) = Some(registry);
    }

    /// Records elapsed micros since `t0` under `name`, if a registry is
    /// attached.
    fn observe_since(&self, name: &str, t0: Instant) {
        let guard = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(reg) = guard.as_ref() {
            reg.observe(name, t0.elapsed().as_micros() as f64);
        }
    }

    /// Looks up a record. Stat-silent and lock-file-free: any number of
    /// threads and processes may read concurrently with one writer.
    pub fn get(&self, kind: u8, key: u64) -> Option<Arc<[u8]>> {
        let t0 = Instant::now();
        let got = locked(&self.inner).map.get(&(kind, key)).cloned();
        self.observe_since("store.get_us", t0);
        got
    }

    /// Whether a record exists.
    pub fn contains(&self, kind: u8, key: u64) -> bool {
        locked(&self.inner).map.contains_key(&(kind, key))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        locked(&self.inner).map.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes a record: appends a checksummed frame and syncs it.
    /// Returns `Ok(false)` if the key is already present (the store is
    /// content-addressed; payloads for one key are immutable). A failed
    /// append leaves the in-memory table unchanged; a *torn* append also
    /// wedges the handle, because the file now ends mid-frame and
    /// anything appended after it would be lost to the recovery scan.
    pub fn put(&self, kind: u8, key: u64, payload: &[u8]) -> Result<bool, AltError> {
        if self.read_only {
            return Err(AltError::Store {
                detail: "store is read-only".to_string(),
            });
        }
        if self.is_wedged() {
            return Err(AltError::Store {
                detail: "store is wedged by an earlier torn append; reopen to recover".to_string(),
            });
        }
        let t0 = Instant::now();
        let mut inner = locked(&self.inner);
        if inner.map.contains_key(&(kind, key)) {
            return Ok(false);
        }
        let frame = format::encode_record(kind, key, payload);
        let seq = inner.seq;
        inner.seq += 1;
        if let Some(hook) = &self.faults {
            match hook.on_append(seq, frame.len()) {
                Some(IoFault::Torn { keep }) => {
                    let keep = keep.min(frame.len());
                    if let Some(f) = inner.file.as_mut() {
                        let _ = f.write_all(&frame[..keep]);
                        let _ = f.sync_data();
                    }
                    inner.file_bytes += keep as u64;
                    if keep < frame.len() {
                        self.wedged.store(true, Ordering::Relaxed);
                        return Err(AltError::Store {
                            detail: format!(
                                "injected torn write: {keep}/{} bytes of record {seq} reached {}",
                                frame.len(),
                                self.path.display()
                            ),
                        });
                    }
                    // The "crash" landed after the full frame: the
                    // record survived; fall through to bookkeeping.
                }
                Some(IoFault::Enospc) => {
                    return Err(AltError::Store {
                        detail: format!(
                            "injected ENOSPC: no space appending record {seq} to {}",
                            self.path.display()
                        ),
                    })
                }
                None => {
                    let f = inner.file.as_mut().ok_or_else(|| AltError::Store {
                        detail: "store has no write handle".to_string(),
                    })?;
                    f.write_all(&frame)
                        .map_err(|e| io_err("appending record to", &self.path, e))?;
                    let t_sync = Instant::now();
                    f.sync_data()
                        .map_err(|e| io_err("appending record to", &self.path, e))?;
                    self.observe_since("store.fsync_us", t_sync);
                    inner.file_bytes += frame.len() as u64;
                }
            }
        } else {
            let f = inner.file.as_mut().ok_or_else(|| AltError::Store {
                detail: "store has no write handle".to_string(),
            })?;
            f.write_all(&frame)
                .map_err(|e| io_err("appending record to", &self.path, e))?;
            let t_sync = Instant::now();
            f.sync_data()
                .map_err(|e| io_err("appending record to", &self.path, e))?;
            self.observe_since("store.fsync_us", t_sync);
            inner.file_bytes += frame.len() as u64;
        }
        inner.map.insert((kind, key), Arc::<[u8]>::from(payload));
        inner.order.push((kind, key));
        self.observe_since("store.append_us", t0);
        Ok(true)
    }

    /// Every record in file order (for `altc store export`).
    pub fn records(&self) -> Vec<RawRecord> {
        let inner = locked(&self.inner);
        inner
            .order
            .iter()
            .filter_map(|id| {
                inner.map.get(id).map(|p| RawRecord {
                    kind: id.0,
                    key: id.1,
                    payload: p.to_vec(),
                })
            })
            .collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let inner = locked(&self.inner);
        let mut s = StoreStats {
            records: inner.map.len(),
            file_bytes: inner.file_bytes,
            recovery: self.recovery.clone(),
            ..StoreStats::default()
        };
        for ((k, _), p) in inner.map.iter() {
            s.payload_bytes += p.len() as u64;
            match *k {
                kind::MEASUREMENT => s.measurements += 1,
                kind::WINNER => s.winners += 1,
                _ => s.unknown += 1,
            }
        }
        s.quarantine_bytes = std::fs::metadata(quarantine_path(&self.path))
            .map(|m| m.len())
            .unwrap_or(0);
        s
    }

    /// Compacts the segment: rewrites all live records atomically (temp
    /// file + fsync + rename) and deletes the quarantine sibling. The
    /// store stays open and writable afterwards.
    pub fn gc(&self) -> Result<GcReport, AltError> {
        if self.read_only {
            return Err(AltError::Store {
                detail: "cannot gc a read-only store".to_string(),
            });
        }
        let t0 = Instant::now();
        let mut inner = locked(&self.inner);
        let bytes_before = inner.file_bytes;
        let mut bytes = format::encode_header().to_vec();
        for id in &inner.order {
            if let Some(p) = inner.map.get(id) {
                bytes.extend_from_slice(&format::encode_record(id.0, id.1, p));
            }
        }
        atomic::write(&self.path, &bytes).map_err(|e| io_err("rewriting", &self.path, e))?;
        // The rename replaced the inode; reopen the append handle.
        inner.file = Some(
            OpenOptions::new()
                .append(true)
                .open(&self.path)
                .map_err(|e| io_err("reopening compacted segment", &self.path, e))?,
        );
        inner.file_bytes = bytes.len() as u64;
        let qpath = quarantine_path(&self.path);
        let quarantine_removed = std::fs::metadata(&qpath).map(|m| m.len()).unwrap_or(0);
        if quarantine_removed > 0 {
            std::fs::remove_file(&qpath).map_err(|e| io_err("removing", &qpath, e))?;
        }
        self.wedged.store(false, Ordering::Relaxed);
        self.observe_since("store.gc_us", t0);
        Ok(GcReport {
            records: inner.order.len(),
            bytes_before,
            bytes_after: inner.file_bytes,
            quarantine_removed,
        })
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("path", &self.path)
            .field("read_only", &self.read_only)
            .field("records", &self.len())
            .field("recovery", &self.recovery)
            .finish()
    }
}

/// Read-only deep check of a segment file: header, every checksum, tail
/// and quarantine accounting. Never mutates anything.
pub fn verify_path(path: impl AsRef<Path>) -> Result<VerifyReport, AltError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| io_err("reading store segment", path, e))?;
    let header = format::check_header(&bytes);
    let quarantine_bytes = std::fs::metadata(quarantine_path(path))
        .map(|m| m.len())
        .unwrap_or(0);
    if header != HeaderCheck::Ok {
        return Ok(VerifyReport {
            header,
            valid_records: 0,
            valid_bytes: 0,
            tail_bytes: bytes.len() as u64,
            corruption: Some(Corruption::TornFrame),
            quarantine_bytes,
        });
    }
    let scan = format::scan_records(&bytes);
    Ok(VerifyReport {
        header,
        valid_records: scan.records.len(),
        valid_bytes: scan.valid_len as u64,
        tail_bytes: (bytes.len() - scan.valid_len) as u64,
        corruption: scan.corrupt,
        quarantine_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::{FailAppend, PartialRead};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("alt-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).expect("mkdir");
        d.join("store.alts")
    }

    #[test]
    fn put_get_roundtrip_across_reopen() {
        let path = tmp("roundtrip");
        {
            let store = Store::open(&path).expect("open");
            assert!(store.put(kind::MEASUREMENT, 7, b"abc").expect("put"));
            assert!(!store.put(kind::MEASUREMENT, 7, b"abc").expect("dup"));
            assert!(store.put(kind::WINNER, 7, b"xyz").expect("other kind"));
            assert_eq!(
                store.get(kind::MEASUREMENT, 7).as_deref(),
                Some(&b"abc"[..])
            );
        }
        let store = Store::open(&path).expect("reopen");
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(kind::WINNER, 7).as_deref(), Some(&b"xyz"[..]));
        assert_eq!(store.recovery().corrupt_events, 0);
        let stats = store.stats();
        assert_eq!((stats.measurements, stats.winners), (1, 1));
        assert!(verify_path(&path).expect("verify").clean());
    }

    #[test]
    fn torn_append_wedges_and_recovery_truncates() {
        let path = tmp("torn");
        {
            let store = Store::open(&path).expect("open");
            store.put(kind::MEASUREMENT, 1, b"first").expect("put");
        }
        {
            let hook = Arc::new(FailAppend::new(0, IoFault::Torn { keep: 9 }));
            let store = Store::open_with_faults(&path, hook.clone()).expect("open");
            let err = store
                .put(kind::MEASUREMENT, 2, b"second record payload")
                .expect_err("torn");
            assert_eq!(err.kind(), "store");
            assert!(store.is_wedged());
            // Wedged: further appends refuse rather than writing bytes
            // that recovery would discard.
            assert!(store.put(kind::MEASUREMENT, 3, b"third").is_err());
            assert_eq!(hook.fired(), 1);
        }
        // The segment now ends in a half-frame; verify sees it...
        let before = verify_path(&path).expect("verify");
        assert!(!before.clean());
        assert_eq!(before.valid_records, 1);
        assert_eq!(before.tail_bytes, 9);
        // ...and a writer open recovers: record 1 survives, the tail is
        // quarantined, the segment is clean again.
        let store = Store::open(&path).expect("recovering open");
        assert_eq!(store.len(), 1);
        assert_eq!(store.recovery().corrupt_events, 1);
        assert_eq!(store.recovery().quarantined_bytes, 9);
        assert_eq!(
            store.get(kind::MEASUREMENT, 1).as_deref(),
            Some(&b"first"[..])
        );
        store
            .put(kind::MEASUREMENT, 2, b"retry")
            .expect("append after recovery");
        let after = verify_path(&path).expect("verify");
        assert!(after.clean());
        assert_eq!(after.valid_records, 2);
        assert_eq!(after.quarantine_bytes, 9);
    }

    #[test]
    fn enospc_fails_without_corrupting() {
        let path = tmp("enospc");
        let hook = Arc::new(FailAppend::new(1, IoFault::Enospc));
        let store = Store::open_with_faults(&path, hook).expect("open");
        store.put(kind::MEASUREMENT, 1, b"ok").expect("put");
        let err = store
            .put(kind::MEASUREMENT, 2, b"fails")
            .expect_err("enospc");
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert!(!store.is_wedged(), "nothing reached the file");
        // The store keeps working once space is back.
        store
            .put(kind::MEASUREMENT, 3, b"later")
            .expect("put after enospc");
        assert_eq!(store.len(), 2);
        assert!(verify_path(&path).expect("verify").clean());
    }

    #[test]
    fn partial_read_recovers_observed_prefix() {
        let path = tmp("partial");
        let full_len;
        {
            let store = Store::open(&path).expect("open");
            store.put(kind::MEASUREMENT, 1, b"aaaa").expect("put");
            store.put(kind::MEASUREMENT, 2, b"bbbb").expect("put");
            full_len = store.stats().file_bytes as usize;
        }
        // A partial read that cuts into the second record: recovery
        // keeps the first and quarantines what it saw of the second.
        let keep = full_len - 2;
        let store = Store::open_with_faults(&path, Arc::new(PartialRead { keep })).expect("open");
        assert_eq!(store.len(), 1);
        assert_eq!(store.recovery().corrupt_events, 1);
        assert!(store.get(kind::MEASUREMENT, 1).is_some());
        assert!(store.get(kind::MEASUREMENT, 2).is_none());
    }

    #[test]
    fn incompatible_version_and_foreign_files_are_rejected() {
        let path = tmp("version");
        {
            Store::open(&path).expect("create");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        let err = Store::open(&path).expect_err("version");
        assert!(err.to_string().contains("v999"), "{err}");
        std::fs::write(&path, b"this is not a store segment at all").expect("write");
        let err = Store::open(&path).expect_err("magic");
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn short_torn_header_is_quarantined_not_fatal() {
        let path = tmp("shorthdr");
        std::fs::write(&path, b"ALT").expect("write");
        let store = Store::open(&path).expect("open recovers");
        assert_eq!(store.len(), 0);
        assert_eq!(store.recovery().quarantined_bytes, 3);
        store.put(kind::MEASUREMENT, 1, b"x").expect("usable");
    }

    #[test]
    fn readonly_reports_but_does_not_mutate() {
        let path = tmp("readonly");
        {
            let store = Store::open(&path).expect("open");
            store.put(kind::MEASUREMENT, 1, b"keep").expect("put");
        }
        // Corrupt the tail by hand.
        let mut bytes = std::fs::read(&path).expect("read");
        let dirty_len = bytes.len() + 5;
        bytes.extend_from_slice(&[1, 2, 3, 4, 5]);
        std::fs::write(&path, &bytes).expect("write");
        let ro = Store::open_readonly(&path).expect("ro open");
        assert!(ro.read_only());
        assert_eq!(ro.len(), 1);
        assert_eq!(ro.recovery().pending_tail_bytes, 5);
        assert_eq!(ro.recovery().quarantined_bytes, 0);
        assert!(ro.put(kind::MEASUREMENT, 9, b"no").is_err());
        assert_eq!(std::fs::read(&path).expect("read").len(), dirty_len);
        // Missing file: read-only open is an error, not a create.
        let missing = path.with_extension("missing");
        assert!(Store::open_readonly(&missing).is_err());
    }

    #[test]
    fn gc_compacts_and_clears_quarantine() {
        let path = tmp("gc");
        {
            let store = Store::open(&path).expect("open");
            store.put(kind::MEASUREMENT, 1, b"one").expect("put");
            store.put(kind::WINNER, 2, b"two").expect("put");
        }
        // Manufacture a corrupt tail, recover it (creating quarantine),
        // then gc.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&[0xde, 0xad]);
        std::fs::write(&path, &bytes).expect("write");
        let store = Store::open(&path).expect("open");
        assert_eq!(store.stats().quarantine_bytes, 2);
        let report = store.gc().expect("gc");
        assert_eq!(report.records, 2);
        assert_eq!(report.quarantine_removed, 2);
        assert_eq!(store.stats().quarantine_bytes, 0);
        // Still writable after the inode swap, and reopenable.
        store
            .put(kind::MEASUREMENT, 3, b"three")
            .expect("post-gc put");
        drop(store);
        let store = Store::open(&path).expect("reopen");
        assert_eq!(store.len(), 3);
        assert!(verify_path(&path).expect("verify").clean());
    }

    #[test]
    fn attached_registry_times_append_fsync_get_and_gc() {
        let path = tmp("timing");
        let store = Store::open(&path).expect("open");
        let reg = Arc::new(CounterRegistry::new("wall"));
        store.attach_registry(reg.clone());
        store.put(kind::MEASUREMENT, 1, b"one").expect("put");
        store.put(kind::MEASUREMENT, 2, b"two").expect("put");
        // A duplicate put does no I/O and records nothing.
        store.put(kind::MEASUREMENT, 1, b"one").expect("dup");
        let _ = store.get(kind::MEASUREMENT, 1);
        store.gc().expect("gc");
        let h = |name: &str| reg.histogram(name).unwrap_or_else(|| panic!("{name}"));
        assert_eq!(h("store.append_us").count, 2);
        assert_eq!(h("store.fsync_us").count, 2);
        assert_eq!(h("store.get_us").count, 1);
        assert_eq!(h("store.gc_us").count, 1);
        // Timing is observation-only: the stored bytes are unchanged.
        assert_eq!(
            store.get(kind::MEASUREMENT, 2).as_deref(),
            Some(&b"two"[..])
        );
    }

    #[test]
    fn records_preserve_file_order() {
        let path = tmp("order");
        let store = Store::open(&path).expect("open");
        for k in [5u64, 1, 9, 3] {
            store
                .put(kind::MEASUREMENT, k, &k.to_le_bytes())
                .expect("put");
        }
        let keys: Vec<u64> = store.records().iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![5, 1, 9, 3]);
    }
}
