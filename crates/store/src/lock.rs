//! Advisory writer lock for the segment file.
//!
//! Writers serialize through an OS advisory lock on a sibling
//! `<segment>.lock` file; readers never touch it, so reads stay
//! lock-free (the checksummed format makes a concurrently-appended tail
//! safe to read — an incomplete frame is simply not yet part of the
//! store). The lock is held for the lifetime of the writer handle and
//! released by the OS even if the process is SIGKILLed, which is exactly
//! the crash model the recovery scan covers.

use std::fs::{File, OpenOptions, TryLockError};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use alt_error::AltError;

/// How long a writer waits for a competing writer before giving up.
pub(crate) const LOCK_WAIT: Duration = Duration::from_secs(5);

/// An exclusive advisory lock, held until dropped.
#[derive(Debug)]
pub(crate) struct WriterLock {
    file: File,
}

impl WriterLock {
    /// The lock-file path guarding `segment`.
    pub(crate) fn path_for(segment: &Path) -> PathBuf {
        let mut os = segment.as_os_str().to_owned();
        os.push(".lock");
        PathBuf::from(os)
    }

    /// Acquires the lock, waiting up to `wait` for another writer.
    pub(crate) fn acquire(segment: &Path, wait: Duration) -> Result<WriterLock, AltError> {
        let path = Self::path_for(segment);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)
            .map_err(|e| AltError::Store {
                detail: format!("opening lock file {}: {e}", path.display()),
            })?;
        let deadline = std::time::Instant::now() + wait;
        loop {
            match file.try_lock() {
                Ok(()) => break,
                Err(TryLockError::WouldBlock) => {
                    if std::time::Instant::now() >= deadline {
                        return Err(AltError::Store {
                            detail: format!(
                                "store is locked by another writer ({}); \
                                 waited {:.1}s",
                                path.display(),
                                wait.as_secs_f64()
                            ),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(TryLockError::Error(e)) => {
                    return Err(AltError::Store {
                        detail: format!("locking {}: {e}", path.display()),
                    })
                }
            }
        }
        // Best-effort breadcrumb for humans inspecting a stuck lock; the
        // lock itself is the flock, not the contents.
        let mut f = &file;
        let _ = writeln!(f, "pid {}", std::process::id());
        Ok(WriterLock { file })
    }
}

impl Drop for WriterLock {
    fn drop(&mut self) {
        // Unlock before the handle closes so a waiting writer wakes
        // promptly. The lock file itself is left in place: removing it
        // would race a writer that just opened (but not yet locked) it.
        let _ = self.file.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_segment(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("alt-store-lock-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mkdir");
        d.join("seg.alts")
    }

    #[test]
    fn second_writer_times_out_while_first_holds() {
        let seg = tmp_segment("contend");
        let held = WriterLock::acquire(&seg, Duration::from_millis(50)).expect("first lock");
        let err =
            WriterLock::acquire(&seg, Duration::from_millis(120)).expect_err("second must wait");
        assert_eq!(err.kind(), "store");
        assert!(err.to_string().contains("another writer"), "{err}");
        drop(held);
        // Released: a new writer acquires immediately.
        let _again = WriterLock::acquire(&seg, Duration::from_millis(50)).expect("relock");
        assert!(WriterLock::path_for(&seg)
            .to_string_lossy()
            .ends_with(".lock"));
    }
}
