//! On-disk segment format: versioned header + checksummed records.
//!
//! The segment is an append-only byte stream:
//!
//! ```text
//! +----------------------------- header (16 bytes) ----------------------------+
//! | magic "ALTSTORE" (8) | version u32 LE | reserved u32 LE (0)                |
//! +------------------------------- record frame --------------------------------+
//! | payload_len u32 LE | kind u8 | key u64 LE | checksum u64 LE | payload ...  |
//! +-----------------------------------------------------------------------------+
//! ```
//!
//! The checksum is FNV-1a over `kind`, the little-endian `key` bytes and
//! the payload, so a frame whose length prefix survived a crash but whose
//! body did not is still detected. Decoding never panics: any byte
//! sequence either parses into records plus a (possibly empty) invalid
//! tail, or is rejected at the header. The crash model is append-only —
//! a torn write can only damage the *last* frame — so the scan treats
//! the first invalid frame and everything after it as the corrupt tail.

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 8] = *b"ALTSTORE";

/// Current schema version. Bump when the frame or payload layout of a
/// record kind changes incompatibly; old files are rejected, not
/// reinterpreted.
pub const STORE_VERSION: u32 = 1;

/// Header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Fixed frame overhead before the payload: len(4) + kind(1) + key(8) +
/// checksum(8).
pub const FRAME_OVERHEAD: usize = 21;

/// Upper bound on a single record's payload; anything larger is treated
/// as corruption (a real payload is a few hundred bytes).
pub const MAX_PAYLOAD: usize = 1 << 26;

/// FNV-1a over a byte slice, seeded by `seed` so the key/kind prefix can
/// be folded in incrementally.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// The checksum of one record: FNV-1a over kind, key and payload.
pub fn record_checksum(kind: u8, key: u64, payload: &[u8]) -> u64 {
    let h = fnv1a(FNV_OFFSET, &[kind]);
    let h = fnv1a(h, &key.to_le_bytes());
    fnv1a(h, payload)
}

/// Renders the 16-byte segment header.
pub fn encode_header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&STORE_VERSION.to_le_bytes());
    h
}

/// Header check outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeaderCheck {
    /// Valid header of the current version.
    Ok,
    /// The file does not start with the magic bytes.
    BadMagic,
    /// Right magic, unsupported version (the value is the file's).
    BadVersion(u32),
    /// Shorter than a header.
    Truncated,
}

/// Validates the segment header prefix of `bytes`.
pub fn check_header(bytes: &[u8]) -> HeaderCheck {
    if bytes.len() < HEADER_LEN {
        return HeaderCheck::Truncated;
    }
    if bytes[..8] != MAGIC {
        return HeaderCheck::BadMagic;
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[8..12]);
    let version = u32::from_le_bytes(v);
    if version != STORE_VERSION {
        return HeaderCheck::BadVersion(version);
    }
    HeaderCheck::Ok
}

/// One decoded record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawRecord {
    /// Record kind tag (see [`crate::kind`]).
    pub kind: u8,
    /// Content-address key (for measurements: the composed cache key).
    pub key: u64,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

/// Encodes one record frame (length prefix, kind, key, checksum,
/// payload).
pub fn encode_record(kind: u8, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&record_checksum(kind, key, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a segment body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scan {
    /// Records decoded from the valid prefix, in file order.
    pub records: Vec<RawRecord>,
    /// Byte length of the valid prefix (header included): the offset a
    /// recovery pass truncates to.
    pub valid_len: usize,
    /// Why the scan stopped short of the file end, when it did.
    pub corrupt: Option<Corruption>,
}

/// Why a frame failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Fewer bytes than one frame header or than the declared payload —
    /// the torn tail of an interrupted append.
    TornFrame,
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    LengthOverflow,
    /// The stored checksum does not match the frame body.
    ChecksumMismatch,
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corruption::TornFrame => write!(f, "torn frame (truncated mid-record)"),
            Corruption::LengthOverflow => write!(f, "length prefix exceeds the payload bound"),
            Corruption::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

/// Scans the record stream after a validated header. Returns every
/// record in the longest valid prefix; bytes from the first invalid
/// frame onward are the corrupt tail (`valid_len..bytes.len()`).
pub fn scan_records(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut off = HEADER_LEN;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < FRAME_OVERHEAD {
            return Scan {
                records,
                valid_len: off,
                corrupt: Some(Corruption::TornFrame),
            };
        }
        let mut w4 = [0u8; 4];
        w4.copy_from_slice(&rest[..4]);
        let len = u32::from_le_bytes(w4) as usize;
        if len > MAX_PAYLOAD {
            return Scan {
                records,
                valid_len: off,
                corrupt: Some(Corruption::LengthOverflow),
            };
        }
        if rest.len() < FRAME_OVERHEAD + len {
            return Scan {
                records,
                valid_len: off,
                corrupt: Some(Corruption::TornFrame),
            };
        }
        let kind = rest[4];
        let mut w8 = [0u8; 8];
        w8.copy_from_slice(&rest[5..13]);
        let key = u64::from_le_bytes(w8);
        w8.copy_from_slice(&rest[13..21]);
        let stored = u64::from_le_bytes(w8);
        let payload = &rest[FRAME_OVERHEAD..FRAME_OVERHEAD + len];
        if record_checksum(kind, key, payload) != stored {
            return Scan {
                records,
                valid_len: off,
                corrupt: Some(Corruption::ChecksumMismatch),
            };
        }
        records.push(RawRecord {
            kind,
            key,
            payload: payload.to_vec(),
        });
        off += FRAME_OVERHEAD + len;
    }
    Scan {
        records,
        valid_len: off,
        corrupt: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(records: &[(u8, u64, Vec<u8>)]) -> Vec<u8> {
        let mut bytes = encode_header().to_vec();
        for (kind, key, payload) in records {
            bytes.extend_from_slice(&encode_record(*kind, *key, payload));
        }
        bytes
    }

    #[test]
    fn roundtrips_records() {
        let recs = vec![
            (1u8, 7u64, vec![1, 2, 3]),
            (2u8, 9u64, Vec::new()),
            (1u8, u64::MAX, vec![0xff; 100]),
        ];
        let bytes = segment(&recs);
        assert_eq!(check_header(&bytes), HeaderCheck::Ok);
        let scan = scan_records(&bytes);
        assert!(scan.corrupt.is_none());
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.records.len(), 3);
        for (r, (kind, key, payload)) in scan.records.iter().zip(&recs) {
            assert_eq!((r.kind, r.key, &r.payload), (*kind, *key, payload));
        }
    }

    #[test]
    fn header_rejections() {
        assert_eq!(check_header(b"short"), HeaderCheck::Truncated);
        let mut h = encode_header();
        h[0] = b'X';
        assert_eq!(check_header(&h), HeaderCheck::BadMagic);
        let mut h = encode_header();
        h[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(check_header(&h), HeaderCheck::BadVersion(99));
    }

    #[test]
    fn every_truncation_point_recovers_the_longest_valid_prefix() {
        let recs = vec![
            (1u8, 1u64, vec![9; 10]),
            (1u8, 2u64, vec![8; 20]),
            (2u8, 3u64, vec![7; 5]),
        ];
        let bytes = segment(&recs);
        let mut boundaries = vec![HEADER_LEN];
        let mut off = HEADER_LEN;
        for (_, _, p) in &recs {
            off += FRAME_OVERHEAD + p.len();
            boundaries.push(off);
        }
        for cut in HEADER_LEN..bytes.len() {
            let scan = scan_records(&bytes[..cut]);
            // The valid prefix is the last record boundary at or below
            // the cut; everything after it is the torn tail.
            let want_len = boundaries
                .iter()
                .rev()
                .find(|&&b| b <= cut)
                .copied()
                .expect("header boundary");
            assert_eq!(scan.valid_len, want_len, "cut at {cut}");
            let want_records = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.records.len(), want_records, "cut at {cut}");
            assert_eq!(scan.corrupt.is_some(), cut != want_len, "cut at {cut}");
        }
    }

    #[test]
    fn bitflips_are_caught_by_the_checksum() {
        let bytes = segment(&[(1u8, 42u64, vec![5; 32])]);
        // Flip one payload byte: the record must be rejected.
        for flip in [HEADER_LEN + FRAME_OVERHEAD, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x01;
            let scan = scan_records(&bad);
            assert_eq!(scan.records.len(), 0);
            assert_eq!(scan.valid_len, HEADER_LEN);
            assert_eq!(scan.corrupt, Some(Corruption::ChecksumMismatch));
        }
    }

    #[test]
    fn length_overflow_is_corruption_not_allocation() {
        let mut bytes = encode_header().to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let scan = scan_records(&bytes);
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.corrupt, Some(Corruption::LengthOverflow));
    }
}
