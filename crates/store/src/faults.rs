//! Injectable filesystem faults for the store's write and read paths.
//!
//! The recovery scan is only trustworthy if it is exercised against the
//! failures it claims to survive. A [`IoFaultHook`] attached to a
//! [`crate::Store`] can fail any append (torn write: only a prefix of
//! the frame reaches the file; ENOSPC: nothing does) and any open-time
//! read (partial read: the scan sees a truncated view of the file),
//! which is exactly the crash/corruption model of the format. Hooks are
//! consulted *before* the real I/O, so an injected fault leaves the file
//! in the same state a real one would.
//!
//! Determinism: hooks must not draw from the tuner's search RNG —
//! attaching a store (faulty or not) must never change which candidates
//! a run explores. Rate-based hooks therefore carry their own seeded
//! stream (see `alt_autotune::fault::IoFaultInjector`); the hooks here
//! are fully deterministic schedules for property tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One injected filesystem fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The append is interrupted mid-frame: only the first `keep` bytes
    /// of the encoded frame reach the file (a crash between `write` and
    /// completion, or a kernel writing a partial page).
    Torn {
        /// Bytes of the frame that survive. May exceed the frame length,
        /// in which case the whole frame survives (the "crash" landed
        /// after the write).
        keep: usize,
    },
    /// The filesystem is out of space: no bytes reach the file.
    Enospc,
}

/// Decides the fate of store I/O operations. Implementations must be
/// thread-safe: the store is shared across tuning threads.
pub trait IoFaultHook: Send + Sync + std::fmt::Debug {
    /// Called before appending record number `seq` (0-based, counted
    /// over the store's lifetime) whose encoded frame is `len` bytes.
    fn on_append(&self, seq: u64, len: usize) -> Option<IoFault> {
        let _ = (seq, len);
        None
    }

    /// Called when the store reads the segment on open; returning
    /// `Some(keep)` truncates the observed bytes to `keep` (a partial
    /// read). `keep` beyond the file length reads the whole file.
    fn on_read(&self, len: usize) -> Option<usize> {
        let _ = len;
        None
    }
}

/// A hook that injects exactly one fault at one append, then stays
/// quiet — the deterministic "crash at point k" schedule the recovery
/// property tests sweep.
#[derive(Debug)]
pub struct FailAppend {
    /// Which append (0-based `seq`) to fail.
    pub at_seq: u64,
    /// The fault to inject there.
    pub fault: IoFault,
    fired: AtomicU64,
}

impl FailAppend {
    /// Fails append number `at_seq` with `fault`.
    pub fn new(at_seq: u64, fault: IoFault) -> Self {
        FailAppend {
            at_seq,
            fault,
            fired: AtomicU64::new(0),
        }
    }

    /// How many times the fault fired (0 or 1).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

impl IoFaultHook for FailAppend {
    fn on_append(&self, seq: u64, _len: usize) -> Option<IoFault> {
        if seq == self.at_seq {
            self.fired.fetch_add(1, Ordering::Relaxed);
            Some(self.fault)
        } else {
            None
        }
    }
}

/// A hook that truncates the open-time read to a fixed byte count — a
/// deterministic partial read.
#[derive(Debug)]
pub struct PartialRead {
    /// Bytes the reader observes.
    pub keep: usize,
}

impl IoFaultHook for PartialRead {
    fn on_read(&self, _len: usize) -> Option<usize> {
        Some(self.keep)
    }
}

/// A scripted hook: a queue of per-append decisions consumed in order
/// (`None` entries let the append through). Appends beyond the script
/// succeed.
#[derive(Debug, Default)]
pub struct Script {
    steps: Mutex<std::collections::VecDeque<Option<IoFault>>>,
}

impl Script {
    /// A hook that replays `steps` against successive appends.
    pub fn new(steps: Vec<Option<IoFault>>) -> Self {
        Script {
            steps: Mutex::new(steps.into()),
        }
    }
}

impl IoFaultHook for Script {
    fn on_append(&self, _seq: u64, _len: usize) -> Option<IoFault> {
        self.steps
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
            .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_append_fires_exactly_once_at_its_seq() {
        let hook = FailAppend::new(2, IoFault::Enospc);
        assert_eq!(hook.on_append(0, 10), None);
        assert_eq!(hook.on_append(1, 10), None);
        assert_eq!(hook.on_append(2, 10), Some(IoFault::Enospc));
        assert_eq!(hook.on_append(3, 10), None);
        assert_eq!(hook.fired(), 1);
    }

    #[test]
    fn script_consumes_steps_in_order() {
        let hook = Script::new(vec![None, Some(IoFault::Torn { keep: 3 }), None]);
        assert_eq!(hook.on_append(0, 10), None);
        assert_eq!(hook.on_append(1, 10), Some(IoFault::Torn { keep: 3 }));
        assert_eq!(hook.on_append(2, 10), None);
        assert_eq!(hook.on_append(3, 10), None, "past the script: clean");
    }
}
