//! Crash-safe whole-file replacement: temp file + fsync + atomic rename.
//!
//! `write(path, bytes)` guarantees that a reader — including a reader
//! racing a crash — observes either the old contents or the new
//! contents, never a torn mixture: the bytes are written to a temporary
//! file in the *same directory* (rename is only atomic within a
//! filesystem), fsynced, renamed over the target, and the directory is
//! fsynced so the rename itself survives a power cut.

use std::io::Write as _;
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
pub fn write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    let tmp = dir.join(format!(".{}.tmp.{}", name, std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Persist the rename: fsync the containing directory. Directory
        // handles cannot be synced on every platform; failure to sync is
        // not failure to write, so it is deliberately ignored.
        if let Ok(d) = std::fs::File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("alt-store-atomic-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("basic");
        let path = dir.join("target.bin");
        write(&path, b"first").expect("first write");
        assert_eq!(std::fs::read(&path).expect("read"), b"first");
        write(&path, b"second, longer").expect("second write");
        assert_eq!(std::fs::read(&path).expect("read"), b"second, longer");
        // No temp droppings left behind.
        let leftovers = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(leftovers, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_leaves_target_untouched() {
        let dir = tmp_dir("fail");
        let path = dir.join("target.bin");
        write(&path, b"stable").expect("seed write");
        // A target whose parent is missing fails without clobbering.
        let bad = dir.join("no-such-subdir").join("x.bin");
        assert!(write(&bad, b"data").is_err());
        assert_eq!(std::fs::read(&path).expect("read"), b"stable");
        std::fs::remove_dir_all(&dir).ok();
    }
}
