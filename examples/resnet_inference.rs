//! End-to-end compilation of ResNet-18: joint layout+loop tuning of a
//! whole network, with the ablation comparison from the paper (ALT vs
//! ALT-OL vs a vendor-style compiler).
//!
//! ```text
//! cargo run --release --example resnet_inference
//! ```

use alt_autotune::tuner::TuneConfig;
use alt_autotune::{tune_graph, Measurer};
use alt_baselines::{alt_ol, vendor_plan};
use alt_models::resnet18;
use alt_sim::intel_cpu;

fn main() {
    let g = resnet18(1);
    println!(
        "ResNet-18 b1: {} operators ({} complex), {:.2} GFLOPs",
        g.num_ops(),
        g.complex_ops().len(),
        g.total_flops() as f64 / 1e9
    );

    let budget = 400u64;
    let profile = intel_cpu();

    // Vendor-style compiler (fixed blocked layouts, expert schedules).
    let (vp, vs) = vendor_plan(&g, &profile, true);
    let vendor = Measurer::new(&g, profile).measure_graph_free(&vp, &vs);
    println!("vendor-style compiler:     {:.2} ms", vendor * 1e3);

    // Loop-only tuning on channels-last (the ALT-OL ablation).
    let ol = alt_ol(&g, profile, budget, 1);
    println!(
        "ALT-OL (loop-only, NHWO):  {:.2} ms  ({} measurements)",
        ol.latency * 1e3,
        ol.measurements
    );

    // Full joint tuning.
    let cfg = TuneConfig {
        joint_budget: budget * 2 / 5,
        loop_budget: budget * 3 / 5,
        seed: 1,
        ..TuneConfig::default()
    };
    let alt = tune_graph(&g, profile, cfg);
    println!(
        "ALT (joint layout + loop): {:.2} ms  ({} measurements)",
        alt.latency * 1e3,
        alt.measurements
    );

    // Show a few of the layouts the joint stage picked.
    println!("\nsample of tuned layouts:");
    let mut shown = 0;
    for (t, layout) in alt.plan.assigned() {
        if !layout.is_identity() && shown < 6 {
            println!("  {}: {layout}", g.tensor(*t).name);
            shown += 1;
        }
    }
    println!(
        "\nspeedup vs vendor {:.2}x, vs loop-only {:.2}x",
        vendor / alt.latency,
        ol.latency / alt.latency
    );
}
