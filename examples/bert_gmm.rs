//! GMM-centric tuning for NLP workloads: tunes the `NKn`-family layouts
//! for BERT-shaped matrix multiplications and shows the layout the joint
//! stage discovers (the paper's Fig. 1c/1d observation that `NKn` tiling
//! often, but not always, wins).
//!
//! ```text
//! cargo run --release --example bert_gmm
//! ```

use alt_autotune::tune_graph;
use alt_autotune::tuner::{FixedLayout, TuneConfig};
use alt_sim::intel_cpu;
use alt_tensor::ops;
use alt_tensor::{Graph, Shape};

fn gmm_graph(m: i64, k: i64, n: i64) -> Graph {
    let mut g = Graph::new();
    let a = g.add_input("a", Shape::new([m, k]));
    let b = g.add_param("b", Shape::new([k, n]));
    let _ = ops::gmm(&mut g, a, b);
    g
}

fn main() {
    // BERT-base projection / FFN shapes at sequence length 128.
    let shapes = [
        (128i64, 768i64, 768i64), // QKV / output projection
        (128, 768, 3072),         // FFN up
        (128, 3072, 768),         // FFN down
        (2048, 768, 768),         // batch-16 projection
    ];
    let profile = intel_cpu();
    let budget = 240u64;

    println!(
        "BERT GMM tuning on {} (budget {budget} each)\n",
        profile.name
    );
    for (m, k, n) in shapes {
        let g = gmm_graph(m, k, n);
        // Joint tuning over the mt/nt/kt template.
        let alt = tune_graph(
            &g,
            profile,
            TuneConfig {
                joint_budget: budget * 2 / 5,
                loop_budget: budget * 3 / 5,
                free_input_layouts: true,
                seed: 3,
                ..TuneConfig::default()
            },
        );
        // Fixed default layout baseline.
        let kn = tune_graph(
            &g,
            profile,
            TuneConfig {
                joint_budget: 0,
                loop_budget: budget,
                fixed_layout: Some(FixedLayout::Identity),
                free_input_layouts: true,
                seed: 3,
                ..TuneConfig::default()
            },
        );
        let c = g.node(g.complex_ops()[0]).output;
        println!("GMM {m}x{k}x{n}:");
        println!("  KN (default, loop-tuned): {:8.1} us", kn.latency * 1e6);
        println!("  ALT joint:                {:8.1} us", alt.latency * 1e6);
        println!("  tuned C layout: {}", alt.plan.layout_of(&g, c));
        println!();
    }
}
