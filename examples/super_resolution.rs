//! Super-resolution inference — one of the production workloads the
//! paper reports deploying ALT on. An FSRCNN-style network: feature
//! extraction, shrinking, mapping, expanding, and a transposed-conv
//! upsampler (T2D is among the most layout-sensitive operators in
//! Fig. 9).
//!
//! ```text
//! cargo run --release --example super_resolution
//! ```

use alt_autotune::tune_graph;
use alt_autotune::tuner::TuneConfig;
use alt_baselines::ansor_like;
use alt_loopir::lower;
use alt_sim::{arm_cpu, Simulator};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape, TensorId};

/// FSRCNN-ish x2 upscaler for a 1x64x64 luma patch.
fn fsrcnn(batch: i64) -> (Graph, TensorId) {
    let mut g = Graph::new();
    let x = g.add_input("y_channel", Shape::new([batch, 1, 64, 64]));

    // Feature extraction: 5x5 conv, 32 features.
    let p0 = ops::pad2d_spatial(&mut g, x, 2);
    let w0 = g.add_param("w_feat", Shape::new([32, 1, 5, 5]));
    let c0 = ops::conv2d(&mut g, p0, w0, ConvCfg::default());
    let f = ops::relu(&mut g, c0);

    // Shrink: 1x1 to 8 channels.
    let ws = g.add_param("w_shrink", Shape::new([8, 32, 1, 1]));
    let s = ops::conv2d(&mut g, f, ws, ConvCfg::default());
    let s = ops::relu(&mut g, s);

    // Mapping: two 3x3 convs at 8 channels.
    let mut m = s;
    for i in 0..2 {
        let p = ops::pad2d_spatial(&mut g, m, 1);
        let w = g.add_param(format!("w_map{i}"), Shape::new([8, 8, 3, 3]));
        let c = ops::conv2d(&mut g, p, w, ConvCfg::default());
        m = ops::relu(&mut g, c);
    }

    // Expand: back to 32 channels.
    let we = g.add_param("w_expand", Shape::new([32, 8, 1, 1]));
    let e = ops::conv2d(&mut g, m, we, ConvCfg::default());
    let e = ops::relu(&mut g, e);

    // Upsample: transposed conv, stride 2 (output 129x129 valid region).
    let wu = g.add_param("w_up", Shape::new([32, 1, 2, 2]));
    let up = ops::tconv2d(&mut g, e, wu, 2);
    (g, up)
}

fn main() {
    let (g, out) = fsrcnn(1);
    let profile = arm_cpu(); // the paper's deployment is mobile-adjacent
    println!(
        "FSRCNN x2: {} operators ({} complex, incl. T2D), output {}",
        g.num_ops(),
        g.complex_ops().len(),
        g.tensor(out).shape
    );

    let budget = 300u64;
    let ansor = ansor_like(&g, profile, budget, 7);
    let alt = tune_graph(
        &g,
        profile,
        TuneConfig {
            joint_budget: budget * 2 / 5,
            loop_budget: budget * 3 / 5,
            seed: 7,
            ..TuneConfig::default()
        },
    );
    println!(
        "Ansor-like (fixed layout): {:.2} ms\nALT (joint tuning):        {:.2} ms  ({:.2}x)",
        ansor.latency * 1e3,
        alt.latency * 1e3,
        ansor.latency / alt.latency
    );

    // Where does the time go after tuning?
    let program = lower(&g, &alt.plan, &alt.sched);
    let sim = Simulator::new(profile);
    let mut lats = sim.group_latencies(&program);
    lats.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nhot groups:");
    for (label, l) in lats.iter().take(4) {
        println!("  {label:30} {:8.1} us", l * 1e6);
    }

    // Validate numerically.
    let bindings = alt_tensor::exec::random_bindings(&g, 3);
    let got = alt_loopir::run_program(&program, &g, &alt.plan, &bindings);
    let want = alt_tensor::exec::run_graph(&g, &bindings);
    let diff = want[out.0].max_abs_diff(&got[&out]);
    println!("\nmax |tuned - reference| = {diff:.2e}");
    assert!(diff < 1e-3);
    println!("super_resolution OK");
}
