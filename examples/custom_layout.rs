//! Hand-driving the layout primitives: the paper's Fig. 2/3 motivating
//! example — multi-dimensional layout tiling with *overlapped* spatial
//! tiles (`unfold`), built manually and validated against the reference
//! executor.
//!
//! ```text
//! cargo run --release --example custom_layout
//! ```

use alt_layout::{Layout, LayoutPlan, LayoutPrim, PropagationMode};
use alt_loopir::{lower, run_program, GraphSchedule};
use alt_sim::{intel_cpu, Simulator};
use alt_tensor::exec::{random_bindings, run_graph};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

fn main() {
    // A stride-1 C2D whose input is H+(KH-1) x W+(KW-1), as in Fig. 2.
    let (h, w, kh, kw, i_ch, o_ch) = (32i64, 32i64, 3i64, 3i64, 8i64, 32i64);
    let mut g = Graph::new();
    let x = g.add_input("Inp", Shape::new([1, i_ch, h + kh - 1, w + kw - 1]));
    let ker = g.add_param("Ker", Shape::new([o_ch, i_ch, kh, kw]));
    let conv = ops::conv2d(&mut g, x, ker, ConvCfg::default());
    let conv_op = g.tensor(conv).producer.unwrap();

    // ---- Output tensor: tile H and W into 2x2 spatial blocks and the
    // output channels by o_t, exactly the Fig. 3 shape
    // N x 2 x 2 x O/o_t x H/2 x W/2 x o_t. ----
    let o_t = 8;
    let out_layout = Layout::identity(Shape::new([1, o_ch, h, w]))
        // N O H W -> N O/o_t o_t H W
        .with(LayoutPrim::Split {
            dim: 1,
            factors: vec![o_ch / o_t, o_t],
        })
        .unwrap()
        // split H and W in half.
        .with(LayoutPrim::Split {
            dim: 3,
            factors: vec![2, h / 2],
        })
        .unwrap()
        .with(LayoutPrim::Split {
            dim: 5,
            factors: vec![2, w / 2],
        })
        .unwrap()
        // [N, O/ot, ot, 2, H/2, 2, W/2] -> [N, 2, 2, O/ot, H/2, W/2, ot]
        .with(LayoutPrim::Reorder {
            perm: vec![0, 3, 5, 1, 4, 6, 2],
        })
        .unwrap();
    println!("output layout: {out_layout}");

    // ---- Input tensor: overlapped tiling (Fig. 2). Each input tile has
    // size H/2 + (KH-1) and advances by H/2, so the halo region between
    // neighbouring tiles is stored twice but each tile is contiguous. ----
    let in_layout = Layout::identity(Shape::new([1, i_ch, h + kh - 1, w + kw - 1]))
        .with(LayoutPrim::Unfold {
            dim: 2,
            tile: h / 2 + (kh - 1),
            stride: h / 2,
        })
        .unwrap()
        .with(LayoutPrim::Unfold {
            dim: 4,
            tile: w / 2 + (kw - 1),
            stride: w / 2,
        })
        .unwrap()
        // [N, I, Th, Bh, Tw, Bw] -> [N, Th, Tw, I, Bh, Bw]
        .with(LayoutPrim::Reorder {
            perm: vec![0, 2, 4, 1, 3, 5],
        })
        .unwrap();
    println!("input layout:  {in_layout}");
    println!(
        "overlap along input height is exactly KH-1 = {} elements (Fig. 2)",
        kh - 1
    );

    // ---- Weight tensor: O/o_t I KH KW o_t (o_t innermost, Fig. 3). ----
    let ker_layout = Layout::identity(Shape::new([o_ch, i_ch, kh, kw]))
        .with(LayoutPrim::Split {
            dim: 0,
            factors: vec![o_ch / o_t, o_t],
        })
        .unwrap()
        .with(LayoutPrim::Reorder {
            perm: vec![0, 2, 3, 4, 1],
        })
        .unwrap();
    println!("weight layout: {ker_layout}");

    // Apply all three and lower: the compilation pass rewrites every
    // access (no operator re-implementation needed — §4.1).
    let mut plan = LayoutPlan::new(PropagationMode::Full);
    plan.set_layout(g.tensor(conv).producer.map(|_| conv).unwrap(), out_layout);
    plan.set_layout(x, in_layout);
    plan.set_layout(ker, ker_layout);
    let _ = conv_op;

    let sched = GraphSchedule::naive();
    let program = lower(&g, &plan, &sched);
    println!(
        "\nlowered loop nest has {} statement executions (duplicated halo included)",
        program.total_stmt_iterations()
    );

    // Execute and compare against the reference semantics.
    let bindings = random_bindings(&g, 1);
    let got = run_program(&program, &g, &plan, &bindings);
    let want = run_graph(&g, &bindings);
    let diff = want[conv.0].max_abs_diff(&got[&conv]);
    println!("max |transformed - reference| = {diff:.2e}");
    assert!(diff < 1e-3);

    // The performance model sees the improved intra-tile contiguity.
    let sim = Simulator::new(intel_cpu());
    let tiled_lat = sim.measure(&program);
    let naive_plan = LayoutPlan::new(PropagationMode::Full);
    let naive_lat = sim.measure(&lower(&g, &naive_plan, &sched));
    println!(
        "estimated latency: NOHW {:.1} us -> overlapped-tiled {:.1} us",
        naive_lat * 1e6,
        tiled_lat * 1e6
    );
    println!("custom_layout OK");
}
