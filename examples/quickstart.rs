//! Quickstart: define a small convolution graph, compile it with joint
//! layout + loop tuning, inspect the chosen layouts and run inference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use alt_core::{CompileOptions, Compiler};
use alt_sim::intel_cpu;
use alt_tensor::exec::{random_bindings, run_graph};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape};

fn main() {
    // 1. Describe the computation: pad -> conv2d -> bias -> relu.
    let mut g = Graph::new();
    let x = g.add_input("x", Shape::new([1, 16, 32, 32]));
    let padded = ops::pad2d_spatial(&mut g, x, 1);
    let w = g.add_param("w", Shape::new([32, 16, 3, 3]));
    let conv = ops::conv2d(&mut g, padded, w, ConvCfg::default());
    let b = g.add_param("b", Shape::new([32]));
    let biased = ops::bias_add(&mut g, conv, b, 1);
    let out = ops::relu(&mut g, biased);

    // 2. Compile for the Intel CPU profile with a small tuning budget.
    let compiler = Compiler::new(intel_cpu()).with_options(CompileOptions {
        joint_budget: 60,
        loop_budget: 120,
        seed: 42,
        ..CompileOptions::default()
    });
    let unoptimized = compiler.compile_unoptimized(&g);
    let compiled = compiler.compile(&g);

    println!("=== compilation report ===");
    print!("{}", compiled.report());
    println!(
        "\nnaive latency:  {:.3} ms\ntuned latency:  {:.3} ms  ({:.1}x speedup, {} measurements)",
        unoptimized.estimated_latency() * 1e3,
        compiled.estimated_latency() * 1e3,
        unoptimized.estimated_latency() / compiled.estimated_latency(),
        compiled.measurements(),
    );

    // 3. Run the compiled program and validate against the reference
    //    executor.
    let inputs = random_bindings(&g, 7);
    let outputs = compiled.run(&inputs);
    let reference = run_graph(&g, &inputs);
    let diff = reference[out.0].max_abs_diff(&outputs[&out]);
    println!("\nmax |tuned - reference| = {diff:.2e} (bit-compatible up to fp reassociation)");
    assert!(diff < 1e-3);
    println!("quickstart OK");
}
