//! Speech-recognition acoustic model — the other production workload the
//! paper names. A wav2letter-style stack of 1-D convolutions over a
//! spectrogram (C1D is one of the nine layout-sensitive operator
//! families of Fig. 9).
//!
//! ```text
//! cargo run --release --example speech_recognition
//! ```

use alt_autotune::tune_graph;
use alt_autotune::tuner::TuneConfig;
use alt_baselines::{ansor_like, vendor_plan};
use alt_tensor::ops::{self, ConvCfg};
use alt_tensor::{Graph, Shape, TensorId};

/// A small wav2letter-like model: widening 1-D conv stack over 80
/// mel-filterbank features and 200 frames, ending in per-frame logits.
fn wav2letter_small(batch: i64) -> (Graph, TensorId) {
    let mut g = Graph::new();
    let x = g.add_input("spectrogram", Shape::new([batch, 80, 200]));
    let mut cur = x;
    // (out channels, kernel, stride)
    for (i, (o, k, s)) in [
        (128i64, 11i64, 2i64),
        (128, 11, 1),
        (192, 11, 1),
        (256, 9, 1),
    ]
    .iter()
    .enumerate()
    {
        let in_ch = g.tensor(cur).shape.dim(1);
        let p = (k - 1) / 2;
        let nd = g.tensor(cur).shape.ndim();
        let mut pads = vec![(0, 0); nd];
        pads[nd - 1] = (p, p);
        let padded = ops::pad(&mut g, cur, &pads);
        let w = g.add_param(format!("w{i}"), Shape::new([*o, in_ch, *k]));
        let c = ops::conv1d(&mut g, padded, w, ConvCfg::strided(*s));
        cur = ops::relu(&mut g, c);
    }
    // Per-frame classifier: 1x1 conv to 29 graphemes.
    let in_ch = g.tensor(cur).shape.dim(1);
    let w = g.add_param("w_cls", Shape::new([29, in_ch, 1]));
    let logits = ops::conv1d(&mut g, cur, w, ConvCfg::default());
    (g, logits)
}

fn main() {
    let (g, out) = wav2letter_small(1);
    let profile = alt_sim::intel_cpu();
    println!(
        "wav2letter-small: {} operators ({} C1D), logits {}",
        g.num_ops(),
        g.complex_ops().len(),
        g.tensor(out).shape
    );

    let budget = 300u64;
    let (vp, vs) = vendor_plan(&g, &profile, true);
    let vendor = alt_autotune::Measurer::new(&g, profile).measure_graph_free(&vp, &vs);
    let ansor = ansor_like(&g, profile, budget, 7);
    let alt = tune_graph(
        &g,
        profile,
        TuneConfig {
            joint_budget: budget * 2 / 5,
            loop_budget: budget * 3 / 5,
            seed: 7,
            ..TuneConfig::default()
        },
    );
    println!(
        "vendor (MKL-DNN-like):     {:.2} ms\n\
         Ansor-like (fixed layout): {:.2} ms\n\
         ALT (joint tuning):        {:.2} ms  ({:.2}x vs Ansor)",
        vendor * 1e3,
        ansor.latency * 1e3,
        alt.latency * 1e3,
        ansor.latency / alt.latency
    );

    // Validate numerically.
    let program = alt_loopir::lower(&g, &alt.plan, &alt.sched);
    let bindings = alt_tensor::exec::random_bindings(&g, 3);
    let got = alt_loopir::run_program(&program, &g, &alt.plan, &bindings);
    let want = alt_tensor::exec::run_graph(&g, &bindings);
    let diff = want[out.0].max_abs_diff(&got[&out]);
    let scale = want[out.0]
        .data()
        .iter()
        .fold(0.0f32, |m, v| m.max(v.abs()));
    println!("\nmax |tuned - reference| = {diff:.2e} (output scale {scale:.1})");
    // Reductions over ~900 terms reassociate; use a relative tolerance.
    assert!(diff < 1e-4 * scale.max(1.0) + 1e-3);
    println!("speech_recognition OK");
}
